module Cx = Numerics.Cx
module Roots = Numerics.Roots
module Err = Resilience.Oshil_error

let two_pi = 2.0 *. Float.pi

type solution = {
  f0 : float;
  k_max : int;
  samples : int;
  nodes : string array;
  spectra : Cx.t array array;
  osc_node : int;
  x : float array;
  iters : int;
  residual : float;
}

let amplitude s = 2.0 *. Cx.abs s.spectra.(s.osc_node).(1)
let phase s = Cx.arg s.spectra.(s.osc_node).(1)

let thd s =
  let sp = s.spectra.(s.osc_node) in
  let p = ref 0.0 in
  for k = 2 to s.k_max do
    let m = Cx.abs sp.(k) in
    p := !p +. (m *. m)
  done;
  let f1 = Cx.abs sp.(1) in
  if f1 > 0.0 then sqrt !p /. f1 else 0.0

(* --- caching --------------------------------------------------------- *)

let cached ?ident ~mode ~k_max ~samples ~tol ~fields compute =
  match ident with
  | Some id when Cache.Store.enabled () ->
    let key =
      let open Cache.Key in
      v ~kind:"hb" ~version:1
        ([
           str "circuit" id;
           str "mode" mode;
           int "kmax" k_max;
           int "samples" samples;
           float "tol" tol;
         ]
        @ fields)
    in
    Cache.Store.find_or_compute ~key ~encode:Cache.Store.to_marshal
      ~decode:Cache.Store.of_marshal compute
  | _ -> compute ()

let mk_solution sys ~f0 ~osc_node ~x ~iters ~residual =
  {
    f0;
    k_max = System.k_max sys;
    samples = System.samples sys;
    nodes = System.node_names sys;
    spectra = System.spectra sys ~x;
    osc_node;
    x;
    iters;
    residual;
  }

(* --- autonomous oscillator: oscprobe --------------------------------- *)

let oscprobe ?ident ?(k_max = 7) ?(samples = 1024) ?(tol = 1e-12) ?probe_node
    ~f_guess ~a_guess circuit =
  Obs.Span.with_ ~cat:"hb" ~name:"hb.oscprobe" @@ fun () ->
  let sys = System.compile ~k_max ~samples circuit in
  let pnode =
    match probe_node with
    | Some nm -> (
      match System.node_index sys nm with
      | Some i -> i
      | None ->
        Err.raise_ Shil ~phase:"hb" Parse_failure
          (Printf.sprintf "unknown probe node %S" nm)
          ~remedy:"probe one of the circuit's non-ground nodes")
    | None -> (
      match System.default_probe sys with
      | Some i -> i
      | None ->
        Err.raise_ Shil ~phase:"hb" No_oscillation
          "circuit has no nonlinear device to sustain an oscillation"
          ~remedy:"oscprobe needs an active nonlinearity; add one or use AC \
                   analysis")
  in
  let compute () =
    let z = System.probe_zscale sys pnode in
    let base = System.size sys in
    let total_iters = ref 0 in
    let warm = ref None in
    let last = ref None in
    let inner (a, omega) =
      let asm = System.assemble sys ~omega0:omega in
      let x0 =
        match !warm with Some x -> x | None -> Array.make base 0.0
      in
      let x, st = Solve.solve ~tol ~x0 asm ~probe:(Some (pnode, a)) in
      total_iters := !total_iters + st.iters;
      warm := Some (Array.sub x 0 base);
      last := Some (Array.sub x 0 base, st);
      (z *. x.(base), z *. x.(base + 1))
    in
    let ectx = Obs.Event.ctx ~rung:"oscprobe" "hb" in
    let outer_tol = Float.max 3e-11 (30.0 *. tol) in
    let a_star, omega_star =
      try
        Roots.newton2d ~tol:outer_tol ~max_iter:80 ~ectx ~f:inner
          ~x0:(a_guess, two_pi *. f_guess) ()
      with Roots.No_convergence msg ->
        Err.raise_ Shil ~phase:"hb" Root_failure
          ("oscprobe outer Newton failed: " ^ msg)
          ~context:
            [
              ("f_guess", Printf.sprintf "%.6g" f_guess);
              ("a_guess", Printf.sprintf "%.6g" a_guess);
            ]
          ~remedy:"improve the (f, A) seeds or raise k_max/samples"
    in
    ignore (inner (a_star, omega_star));
    let x, st =
      match !last with Some v -> v | None -> assert false
    in
    mk_solution sys ~f0:(omega_star /. two_pi) ~osc_node:pnode ~x
      ~iters:!total_iters ~residual:st.Solve.residual
  in
  cached ?ident ~mode:"oscprobe" ~k_max ~samples ~tol
    ~fields:
      Cache.Key.[ float "fguess" f_guess; float "aguess" a_guess ]
    compute

(* --- injected-tone SHIL ---------------------------------------------- *)

type verdict = {
  locked : bool;
  f_inj : float;
  n_sub : int;
  amp : float;
  lock_phase : float;
  sol : solution;
}

let check_layout sys free =
  if
    Array.length free.x <> System.size sys
    || free.nodes <> System.node_names sys
  then
    Err.raise_ Shil ~phase:"hb" Parse_failure
      "injected circuit does not match the free-running solution's layout"
      ~remedy:"inject through an Isource (no new nodes or branches) and keep \
               k_max/samples"

let injected_solve ~tol ~free ~n ~f_inj sys =
  let f0 = f_inj /. float_of_int n in
  let asm = System.assemble sys ~omega0:(two_pi *. f0) in
  let x, st = Solve.solve ~tol ~x0:free.x asm ~probe:None in
  let sol =
    mk_solution sys ~f0 ~osc_node:free.osc_node ~x ~iters:st.Solve.iters
      ~residual:st.Solve.residual
  in
  let amp = amplitude sol in
  {
    locked = amp > 0.5 *. amplitude free;
    f_inj;
    n_sub = n;
    amp;
    lock_phase = phase sol;
    sol;
  }

let injected ?ident ?(tol = 1e-12) ~free ~n ~f_inj circuit =
  Obs.Span.with_ ~cat:"hb" ~name:"hb.injected" @@ fun () ->
  let sys = System.compile ~k_max:free.k_max ~samples:free.samples circuit in
  check_layout sys free;
  cached ?ident ~mode:"injected" ~k_max:free.k_max ~samples:free.samples ~tol
    ~fields:
      Cache.Key.
        [
          float "finj" f_inj;
          int "n" n;
          float "free_f0" free.f0;
          float "free_amp" (amplitude free);
          float "free_res" free.residual;
        ]
    (fun () -> injected_solve ~tol ~free ~n ~f_inj sys)

(* --- HB lock range --------------------------------------------------- *)

type band = {
  n_band : int;
  f_center : float;
  f_lo : float;
  f_hi : float;
  probes : int;
  holes : int;
}

let lock_range ?ident ?(tol = 1e-12) ~free ~n ~guess_width ~inject () =
  Obs.Span.with_ ~cat:"hb" ~name:"hb.lockrange" @@ fun () ->
  let compute () =
    let fc = float_of_int n *. free.f0 in
    let free_amp = amplitude free in
    let probes = ref 0 and holes = ref 0 in
    let warm = ref free.x in
    let probe f_inj =
      incr probes;
      Obs.Metrics.incr "hb.lockrange.probes";
      let sys =
        System.compile ~k_max:free.k_max ~samples:free.samples
          (inject ~f_inj)
      in
      check_layout sys free;
      let f0 = f_inj /. float_of_int n in
      let asm = System.assemble sys ~omega0:(two_pi *. f0) in
      let classify x st =
        let sol =
          mk_solution sys ~f0 ~osc_node:free.osc_node ~x
            ~iters:st.Solve.iters ~residual:st.Solve.residual
        in
        if amplitude sol > 0.5 *. free_amp then begin
          warm := x;
          true
        end
        else false
      in
      match Solve.solve ~tol ~x0:!warm asm ~probe:None with
      | x, st -> classify x st
      | exception Err.Error _ -> (
        (* the warm (locked-branch) start found no solution; retry cold —
           the suppressed branch is a mild solve from zero *)
        match Solve.solve ~tol asm ~probe:None with
        | x, st -> classify x st
        | exception Err.Error _ ->
          incr holes;
          Obs.Metrics.incr "resilience.hb.holes";
          false)
    in
    if not (probe fc) then
      Err.raise_ Shil ~phase:"hb" No_oscillation
        (Printf.sprintf
           "oscillator does not lock at the sub-harmonic band center %.6g Hz"
           fc)
        ~remedy:"check the injection amplitude and the free-running solution";
    let center_x = !warm in
    let w0 = Float.max (Float.abs guess_width /. 2.0) (1e-7 *. fc) in
    let tol_f = Float.max (1e-3 *. w0) (1e-10 *. fc) in
    let edge dir =
      warm := center_x;
      let rec march j f_in =
        if j > 16 then
          Err.raise_ Shil ~phase:"hb" Root_failure
            (Printf.sprintf
               "no unlock boundary within %.3g Hz of the band center"
               (w0 *. (1.5 ** 16.0)))
            ~remedy:"the guess width is far too small; pass a wider one"
        else
          let f = fc +. (dir *. w0 *. (1.5 ** float_of_int j)) in
          if probe f then march (j + 1) f else (f_in, f)
      in
      let rec bisect f_in f_out k =
        if Float.abs (f_out -. f_in) <= tol_f || k > 64 then f_in
        else
          let fm = 0.5 *. (f_in +. f_out) in
          if probe fm then bisect fm f_out (k + 1) else bisect f_in fm (k + 1)
      in
      let f_in, f_out = march 0 fc in
      bisect f_in f_out 0
    in
    let f_hi = edge 1.0 in
    let f_lo = edge (-1.0) in
    {
      n_band = n;
      f_center = fc;
      f_lo;
      f_hi;
      probes = !probes;
      holes = !holes;
    }
  in
  cached ?ident ~mode:"lockrange" ~k_max:free.k_max ~samples:free.samples ~tol
    ~fields:
      Cache.Key.
        [
          int "n" n;
          float "guess_width" guess_width;
          float "free_f0" free.f0;
          float "free_amp" (amplitude free);
          float "free_res" free.residual;
        ]
    compute
