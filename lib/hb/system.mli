(** Harmonic-domain compilation of a {!Spice.Circuit}.

    The multi-harmonic twin of {!Spice.Mna}: a circuit is compiled once
    into per-harmonic unknowns — node voltages followed by branch
    currents (voltage sources and inductors, device order), each
    carrying [2 k_max + 1] real slots — and then assembled at a base
    angular frequency into the constant linear stamp matrix plus source
    vector. Nonlinear devices are evaluated in the time domain on a
    uniform [samples]-point grid and folded back through the shared
    {!Numerics.Trig_tables} / {!Numerics.Kernel} quadrature machinery,
    with analytic conversion-matrix Jacobian blocks (Toeplitz in the
    conductance spectrum).

    Unknown layout: for MNA unknown [i] and harmonic slot [h],
    [idx t i h = i * (2 k_max + 1) + h] where [h = 0] is DC,
    [h = 2k - 1] is [Re V_k] and [h = 2k] is [Im V_k]. The spectral
    convention is the repo-wide one ({!Numerics.Fourier}):
    [x(θ) = X_0 + Σ_{k>=1} 2 Re (X_k e^{jkθ})].

    Supported devices: R, L, C, V/I sources (DC, commensurate [Sine];
    [Pulse]/[Pwl] contribute their DC value only), diodes, tunnel
    diodes and behavioural [Nonlinear_cs]. BJT and MOSFET devices raise
    a typed [Parse_failure] — use transient analysis for those. *)

type t

val compile : ?k_max:int -> ?samples:int -> Spice.Circuit.t -> t
(** [compile circuit] builds the harmonic system. [k_max] (default 7)
    is the highest retained harmonic; [samples] (default 1024) the
    time-domain quadrature points, required [>= 4 k_max]. Raises a
    typed {!Resilience.Oshil_error} on unsupported devices;
    [Invalid_argument] if [k_max < 1] or [samples] is too small. *)

val k_max : t -> int
val samples : t -> int
val n_nodes : t -> int
val size : t -> int
(** Total real unknowns: [(n_nodes + n_branches) * (2 k_max + 1)]. *)

val idx : t -> int -> int -> int
(** [idx t i h] — flat index of MNA unknown [i], harmonic slot [h]. *)

val node_names : t -> string array
(** Non-ground node names, sorted (same order as {!Spice.Mna}). *)

val node_index : t -> string -> int option

val default_probe : t -> int option
(** The natural oscillation probe node: the first non-ground terminal
    of the first nonlinear device, if any. *)

val probe_zscale : t -> int -> float
(** Impedance scale at a node (reciprocal of the total resistive
    conductance touching it, 1.0 when none): multiplying a probe
    current by this yields a voltage-like residual. *)

type assembled
(** The system frozen at a base frequency: linear stamps and source
    spectra are precomputed; only nonlinear devices are re-evaluated
    per Newton iteration. *)

val assemble : t -> omega0:float -> assembled
(** Raises a typed [Parse_failure] if a [Sine] source frequency is not
    a harmonic of [omega0] within 1e-6 relative, or exceeds [k_max];
    [Invalid_argument] if [omega0 <= 0]. *)

val system : assembled -> t
val omega0 : assembled -> float

val eval : assembled -> x:float array -> jac:Numerics.Linalg.mat -> res:float array -> unit
(** Fill rows/columns [0 .. size-1] of [jac] and [res] with the
    spectral Jacobian and residual at [x]. [jac]/[res] may be larger
    (probe augmentation); the extra rows and columns are left
    untouched. *)

val spectra : t -> x:float array -> Numerics.Cx.t array array
(** Per-node harmonic coefficients [X_0 .. X_{k_max}] of a solution
    vector (nodes in {!node_names} order). *)
