module Cx = Numerics.Cx
module Linalg = Numerics.Linalg
module Kernel = Numerics.Kernel
module Trig = Numerics.Trig_tables
module Circuit = Spice.Circuit
module Device = Spice.Device
module Wave = Spice.Wave
module Err = Resilience.Oshil_error

let two_pi = 2.0 *. Float.pi

type nl_dev = {
  np : int;  (* -1 = ground *)
  nn : int;
  f : float -> float;
  df : float -> float;
}

type branch =
  | Ind of { bp : int; bn : int; l : float }
  | Vsrc of { bp : int; bn : int; wave : Wave.t }

type t = {
  node_names : string array;
  n_nodes : int;
  branches : branch array;
  n_unk : int;
  k_max : int;
  samples : int;
  resistors : (int * int * float) array;  (* p, n, conductance *)
  capacitors : (int * int * float) array;
  isources : (int * int * Wave.t) array;
  nls : nl_dev array;
}

let k_max t = t.k_max
let samples t = t.samples
let n_nodes t = t.n_nodes
let node_names t = t.node_names

(* slots per unknown: DC + (Re, Im) per harmonic *)
let nh t = (2 * t.k_max) + 1
let size t = t.n_unk * nh t
let idx t i h = (i * nh t) + h

let node_index t name =
  let r = ref None in
  Array.iteri (fun i nm -> if nm = name && !r = None then r := Some i) t.node_names;
  !r

let unsupported name what =
  Err.raise_ Spice ~phase:"hb" Parse_failure
    (Printf.sprintf "device %s (%s) is not supported by harmonic balance" name
       what)
    ~remedy:"use transient analysis, or model the device as a Nonlinear_cs"

let compile ?(k_max = 7) ?(samples = 1024) circuit =
  if k_max < 1 then invalid_arg "Hb.System.compile: k_max must be >= 1";
  if samples < 4 * k_max || samples < 8 then
    invalid_arg "Hb.System.compile: samples must be >= max 8 (4 * k_max)";
  let node_names = Array.of_list (Circuit.node_names circuit) in
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i nm -> Hashtbl.replace tbl nm i) node_names;
  let node nm = if Circuit.is_ground nm then -1 else Hashtbl.find tbl nm in
  let rs = ref [] and cs = ref [] and is = ref [] in
  let nls = ref [] and brs = ref [] in
  List.iter
    (fun d ->
      match d with
      | Device.Resistor { name; n1; n2; r } ->
        if r = 0.0 then
          Err.raise_ Spice ~phase:"hb" Parse_failure
            (Printf.sprintf "resistor %s has zero resistance" name)
            ~remedy:"use a voltage source for an ideal short"
        else rs := (node n1, node n2, 1.0 /. r) :: !rs
      | Device.Capacitor { n1; n2; c; _ } -> cs := (node n1, node n2, c) :: !cs
      | Device.Inductor { n1; n2; l; _ } ->
        brs := Ind { bp = node n1; bn = node n2; l } :: !brs
      | Device.Vsource { np; nn; wave; _ } ->
        brs := Vsrc { bp = node np; bn = node nn; wave } :: !brs
      | Device.Isource { np; nn; wave; _ } ->
        is := (node np, node nn, wave) :: !is
      | Device.Diode { np; nn; p; _ } ->
        nls :=
          {
            np = node np;
            nn = node nn;
            f = (fun v -> fst (Device.diode_iv p v));
            df = (fun v -> snd (Device.diode_iv p v));
          }
          :: !nls
      | Device.Tunnel_diode { np; nn; p; _ } ->
        nls :=
          {
            np = node np;
            nn = node nn;
            f = (fun v -> fst (Device.tunnel_iv p v));
            df = (fun v -> snd (Device.tunnel_iv p v));
          }
          :: !nls
      | Device.Nonlinear_cs { np; nn; f; df; _ } ->
        let df =
          match df with
          | Some d -> d
          | None ->
            fun v ->
              let h = 1e-6 *. (1.0 +. Float.abs v) in
              (f (v +. h) -. f (v -. h)) /. (2.0 *. h)
        in
        nls := { np = node np; nn = node nn; f; df } :: !nls
      | Device.Bjt { name; _ } -> unsupported name "bjt"
      | Device.Mosfet { name; _ } -> unsupported name "mosfet")
    (Circuit.devices circuit);
  let branches = Array.of_list (List.rev !brs) in
  {
    node_names;
    n_nodes = Array.length node_names;
    branches;
    n_unk = Array.length node_names + Array.length branches;
    k_max;
    samples;
    resistors = Array.of_list (List.rev !rs);
    capacitors = Array.of_list (List.rev !cs);
    isources = Array.of_list (List.rev !is);
    nls = Array.of_list (List.rev !nls);
  }

let default_probe t =
  let pick { np; nn; _ } = if np >= 0 then Some np else if nn >= 0 then Some nn else None in
  Array.fold_left
    (fun acc d -> match acc with Some _ -> acc | None -> pick d)
    None t.nls

let probe_zscale t node =
  let g =
    Array.fold_left
      (fun acc (p, n, g) -> if p = node || n = node then acc +. g else acc)
      0.0 t.resistors
  in
  if g > 0.0 then 1.0 /. g else 1.0

(* --- source spectra -------------------------------------------------- *)

(* Harmonic coefficients of an independent-source waveform at base
   frequency [f0], in the [x(θ) = X_0 + Σ 2 Re (X_k e^{jkθ})]
   convention. [Sine] sources must sit on a harmonic of the base;
   [Pulse]/[Pwl] keep only their DC value (harmonic balance is a
   steady-state analysis — startup kicks vanish by design). *)
let spectrum_of_wave ~f0 ~k_max ~what wave =
  let spec = Array.make (k_max + 1) Cx.zero in
  (match wave with
  | Wave.Dc v -> spec.(0) <- Cx.of_float v
  | Wave.Sine { offset; ampl; freq; phase; delay } ->
    let kf = freq /. f0 in
    let k = int_of_float (Float.round kf) in
    if k < 1 || Float.abs (kf -. float_of_int k) > 1e-6 *. Float.max 1.0 kf then
      Err.raise_ Spice ~phase:"hb" Parse_failure
        (Printf.sprintf
           "source %s at %.6g Hz is not a harmonic of the base frequency %.6g \
            Hz" what freq f0)
        ~remedy:"make source frequencies integer multiples of the base"
    else if k > k_max then
      Err.raise_ Spice ~phase:"hb" Parse_failure
        (Printf.sprintf "source %s sits on harmonic %d but k_max = %d" what k
           k_max)
        ~remedy:"raise k_max to cover every source harmonic"
    else begin
      (* offset + ampl sin(2π f (t - delay) + phase)
         = offset + ampl cos(kθ + phase - 2π f delay - π/2) *)
      let psi = phase -. (two_pi *. freq *. delay) -. (Float.pi /. 2.0) in
      spec.(0) <- Cx.of_float offset;
      spec.(k) <- Cx.polar (ampl /. 2.0) psi
    end
  | (Wave.Pulse _ | Wave.Pwl _) as w -> spec.(0) <- Cx.of_float (Wave.dc_value w));
  spec

(* --- linear assembly ------------------------------------------------- *)

type assembled = {
  sys : t;
  omega : float;
  a : Linalg.mat;  (* constant linear stamps *)
  b : float array;  (* source vector: residual = a x + NL(x) - b *)
}

let system asm = asm.sys
let omega0 asm = asm.omega

(* Admittance (or unit-coupling) entry between equation row [row] and
   variable column [col] at harmonic [k], with sign [s]: the real DC
   entry at [k = 0], else the 2x2 rotation block of [yre + j yim]. *)
let stamp a t ~k ~row ~col ~s yre yim =
  if k = 0 then begin
    let r0 = idx t row 0 and c0 = idx t col 0 in
    a.(r0).(c0) <- a.(r0).(c0) +. (s *. yre)
  end
  else begin
    let r1 = idx t row ((2 * k) - 1) and r2 = idx t row (2 * k) in
    let c1 = idx t col ((2 * k) - 1) and c2 = idx t col (2 * k) in
    a.(r1).(c1) <- a.(r1).(c1) +. (s *. yre);
    a.(r1).(c2) <- a.(r1).(c2) -. (s *. yim);
    a.(r2).(c1) <- a.(r2).(c1) +. (s *. yim);
    a.(r2).(c2) <- a.(r2).(c2) +. (s *. yre)
  end

(* Two-terminal admittance between nodes p and n at harmonic k. *)
let stamp_pair a t ~k p n yre yim =
  if p >= 0 then stamp a t ~k ~row:p ~col:p ~s:1.0 yre yim;
  if p >= 0 && n >= 0 then begin
    stamp a t ~k ~row:p ~col:n ~s:(-1.0) yre yim;
    stamp a t ~k ~row:n ~col:p ~s:(-1.0) yre yim
  end;
  if n >= 0 then stamp a t ~k ~row:n ~col:n ~s:1.0 yre yim

let add_spec t vec u s spec =
  vec.(idx t u 0) <- vec.(idx t u 0) +. (s *. Cx.re spec.(0));
  for k = 1 to t.k_max do
    let r1 = idx t u ((2 * k) - 1) and r2 = idx t u (2 * k) in
    vec.(r1) <- vec.(r1) +. (s *. Cx.re spec.(k));
    vec.(r2) <- vec.(r2) +. (s *. Cx.im spec.(k))
  done

let assemble t ~omega0 =
  if not (omega0 > 0.0) then
    invalid_arg "Hb.System.assemble: omega0 must be > 0";
  let f0 = omega0 /. two_pi in
  let n = size t in
  let a = Linalg.create n n and b = Array.make n 0.0 in
  Array.iter
    (fun (p, nn, g) ->
      for k = 0 to t.k_max do
        stamp_pair a t ~k p nn g 0.0
      done)
    t.resistors;
  Array.iter
    (fun (p, nn, c) ->
      for k = 1 to t.k_max do
        stamp_pair a t ~k p nn 0.0 (float_of_int k *. omega0 *. c)
      done)
    t.capacitors;
  Array.iteri
    (fun j br ->
      let u = t.n_nodes + j in
      let bp, bn = match br with Ind { bp; bn; _ } | Vsrc { bp; bn; _ } -> (bp, bn) in
      for k = 0 to t.k_max do
        (* KCL: the branch current leaves bp and enters bn... *)
        if bp >= 0 then stamp a t ~k ~row:bp ~col:u ~s:1.0 1.0 0.0;
        if bn >= 0 then stamp a t ~k ~row:bn ~col:u ~s:(-1.0) 1.0 0.0;
        (* ...and the branch equation pins V_bp - V_bn per harmonic *)
        if bp >= 0 then stamp a t ~k ~row:u ~col:bp ~s:1.0 1.0 0.0;
        if bn >= 0 then stamp a t ~k ~row:u ~col:bn ~s:(-1.0) 1.0 0.0
      done;
      match br with
      | Ind { l; _ } ->
        (* V - jkω L I = 0; at DC the inductor is a short *)
        for k = 1 to t.k_max do
          stamp a t ~k ~row:u ~col:u ~s:(-1.0) 0.0 (float_of_int k *. omega0 *. l)
        done
      | Vsrc { wave; _ } ->
        let spec = spectrum_of_wave ~f0 ~k_max:t.k_max ~what:"vsource" wave in
        add_spec t b u 1.0 spec)
    t.branches;
  Array.iter
    (fun (p, nn, wave) ->
      let spec = spectrum_of_wave ~f0 ~k_max:t.k_max ~what:"isource" wave in
      (* SPICE convention: the current is pulled out of np, pushed into
         nn, so it appears as -J in np's source slot and +J in nn's *)
      if p >= 0 then add_spec t b p (-1.0) spec;
      if nn >= 0 then add_spec t b nn 1.0 spec)
    t.isources;
  { sys = t; omega = omega0; a; b }

(* --- nonlinear devices: time-domain eval + conversion matrices ------- *)

let nl_stamp t ~x ~jac ~res { np; nn; f; df } =
  let s = t.samples and km = t.k_max in
  let fs = float_of_int s in
  let comp i h = if i >= 0 then x.(idx t i h) else 0.0 in
  Kernel.with_bufs ~len:s 3 @@ fun bufs ->
  let v = bufs.(0) and cur = bufs.(1) and g = bufs.(2) in
  (* synthesize the branch voltage over one period *)
  let dc = comp np 0 -. comp nn 0 in
  Array.fill v 0 s dc;
  for k = 1 to km do
    let cos_t, sin_t = Trig.get ~points:s ~k in
    let vre = 2.0 *. (comp np ((2 * k) - 1) -. comp nn ((2 * k) - 1)) in
    let vim = 2.0 *. (comp np (2 * k) -. comp nn (2 * k)) in
    for smp = 0 to s - 1 do
      v.(smp) <- v.(smp) +. (vre *. cos_t.(smp)) -. (vim *. sin_t.(smp))
    done
  done;
  for smp = 0 to s - 1 do
    cur.(smp) <- f v.(smp);
    g.(smp) <- df v.(smp)
  done;
  (* current spectrum F_k and conductance spectrum G_l (l up to 2K for
     the Toeplitz conversion blocks) *)
  let project buf l =
    let cos_t, sin_t = Trig.get ~points:s ~k:l in
    let re, im = Kernel.dot2 ~n:s buf ~cos_t ~sin_t in
    Cx.make (re /. fs) (im /. fs)
  in
  let fk = Array.init (km + 1) (fun k -> project cur k) in
  let gl = Array.init ((2 * km) + 1) (fun l -> project g l) in
  let gat l = if l >= 0 then gl.(l) else Cx.conj gl.(-l) in
  (* KCL residual: the device current leaves np and enters nn *)
  let add_res i s0 =
    if i >= 0 then begin
      res.(idx t i 0) <- res.(idx t i 0) +. (s0 *. Cx.re fk.(0));
      for k = 1 to km do
        let r1 = idx t i ((2 * k) - 1) and r2 = idx t i (2 * k) in
        res.(r1) <- res.(r1) +. (s0 *. Cx.re fk.(k));
        res.(r2) <- res.(r2) +. (s0 *. Cx.im fk.(k))
      done
    end
  in
  add_res np 1.0;
  add_res nn (-1.0);
  (* conversion-matrix Jacobian block between equation node [row] and
     variable node [col]:
       dF_k/dV_0       = G_k
       dF_k/d(Re V_m)  = G_{k-m} + G_{k+m}
       dF_k/d(Im V_m)  = j (G_{k-m} - G_{k+m})
     with G_{-l} = conj G_l; the DC row is the k = 0 specialisation. *)
  let block row col s0 =
    if row >= 0 && col >= 0 then begin
      let r0 = idx t row 0 in
      let add r c v = jac.(r).(c) <- jac.(r).(c) +. (s0 *. v) in
      add r0 (idx t col 0) (Cx.re gl.(0));
      for m = 1 to km do
        add r0 (idx t col ((2 * m) - 1)) (2.0 *. Cx.re gl.(m));
        add r0 (idx t col (2 * m)) (2.0 *. Cx.im gl.(m))
      done;
      for k = 1 to km do
        let r1 = idx t row ((2 * k) - 1) and r2 = idx t row (2 * k) in
        add r1 (idx t col 0) (Cx.re gl.(k));
        add r2 (idx t col 0) (Cx.im gl.(k));
        for m = 1 to km do
          let gsum = Cx.add (gat (k - m)) (gat (k + m)) in
          let gdif = Cx.sub (gat (k - m)) (gat (k + m)) in
          add r1 (idx t col ((2 * m) - 1)) (Cx.re gsum);
          add r2 (idx t col ((2 * m) - 1)) (Cx.im gsum);
          (* j gdif: Re = -Im gdif, Im = Re gdif *)
          add r1 (idx t col (2 * m)) (-.Cx.im gdif);
          add r2 (idx t col (2 * m)) (Cx.re gdif)
        done
      done
    end
  in
  block np np 1.0;
  block np nn (-1.0);
  block nn np (-1.0);
  block nn nn 1.0

let eval asm ~x ~jac ~res =
  let t = asm.sys in
  let n = size t in
  for i = 0 to n - 1 do
    let ai = asm.a.(i) in
    Array.blit ai 0 jac.(i) 0 n;
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. (ai.(j) *. x.(j))
    done;
    res.(i) <- !acc -. asm.b.(i)
  done;
  Array.iter (fun d -> nl_stamp t ~x ~jac ~res d) t.nls

let spectra t ~x =
  Array.init t.n_nodes (fun i ->
      Array.init (t.k_max + 1) (fun k ->
          if k = 0 then Cx.of_float x.(idx t i 0)
          else Cx.make x.(idx t i ((2 * k) - 1)) x.(idx t i (2 * k))))
