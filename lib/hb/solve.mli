(** Newton on the spectral residual.

    The solver runs under the {!Resilience.Policy} ladder (plain
    Newton, then damped Newton with a halving line search) with phase
    ["hb"], so failures surface as typed [Solver_divergence] errors and
    recoveries land on the [resilience.hb.*] counters. The fault site
    [hb-newton] fails one solve attempt per firing.

    Telemetry: each iteration bumps [hb.newton_iters] and, when the
    introspection event stream is on, emits a [Newton_iter] carrying
    the solver identity (["hb"], rung name); every successful solve
    bumps [hb.solves] and samples the converged scaled residual into
    the [hb.residual] histogram.

    Convergence is measured on the row-scaled residual infinity norm
    (each row divided by its Jacobian row maximum), relative to
    [max 1 ||x||_inf]. *)

type stats = { iters : int; residual : float; rung : string }

val solve :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  System.assembled ->
  probe:(int * float) option ->
  float array * stats
(** [solve asm ~probe] returns the converged unknown vector (length
    [System.size] plus two probe-current slots when [probe] is given)
    and solve statistics. [tol] defaults to 1e-12, [max_iter] to 60.

    [probe = Some (node, a)] augments the system with an ideal
    fundamental-only AC probe at [node]: two extra unknowns (the probe
    current's Re/Im parts, stored after the base unknowns) and two pin
    equations [Re V_{node,1} = a/2], [Im V_{node,1} = 0]. The probe is
    an open circuit at every other harmonic; the oscprobe outer loop
    drives its fundamental current to zero.

    Raises {!Resilience.Oshil_error.Error} ([Solver_divergence]) when
    every rung fails. *)
