module Linalg = Numerics.Linalg
module Fault = Resilience.Fault
module Policy = Resilience.Policy

type stats = { iters : int; residual : float; rung : string }

(* converged scaled residuals, by decade *)
let () =
  Obs.Metrics.register_histogram ~name:"hb.residual"
    ~buckets:[| 1e-15; 1e-13; 1e-11; 1e-9; 1e-6; 1e-3; 1.0 |]

let attempt ?(tol = 1e-12) ?(max_iter = 60) ~rung ~damped asm ~probe ~x0 () =
  if Fault.fire "hb-newton" then Error (rung ^ ": injected fault (hb-newton)")
  else begin
    let t = System.system asm in
    let base = System.size t in
    let n = base + (match probe with Some _ -> 2 | None -> 0) in
    let x = Array.make n 0.0 in
    Array.blit x0 0 x 0 (min (Array.length x0) n);
    (match probe with
    | Some (p, a) ->
      x.(System.idx t p 1) <- a /. 2.0;
      x.(System.idx t p 2) <- 0.0
    | None -> ());
    let jac = Linalg.create n n and res = Array.make n 0.0 in
    let ectx =
      if Obs.Event.enabled () then Some (Obs.Event.ctx ~rung "hb") else None
    in
    let emit_iter iter residual step damping =
      match ectx with
      | Some ctx ->
        Obs.Event.emit
          (Obs.Event.Newton_iter { ctx; iter; residual; step; damping })
      | None -> ()
    in
    let emit_done iters converged residual =
      match ectx with
      | Some ctx ->
        Obs.Event.emit (Obs.Event.Newton_done { ctx; iters; converged; residual })
      | None -> ()
    in
    let fill () =
      System.eval asm ~x ~jac ~res;
      match probe with
      | Some (p, a) ->
        let r1 = System.idx t p 1 and r2 = System.idx t p 2 in
        (* the probe current flows into the node: KCL sees -Ip *)
        res.(r1) <- res.(r1) -. x.(base);
        res.(r2) <- res.(r2) -. x.(base + 1);
        jac.(r1).(base) <- -1.0;
        jac.(r2).(base + 1) <- -1.0;
        (* pin rows: Re V_1 = a/2, Im V_1 = 0 *)
        res.(base) <- x.(r1) -. (a /. 2.0);
        res.(base + 1) <- x.(r2);
        Array.fill jac.(base) 0 n 0.0;
        Array.fill jac.(base + 1) 0 n 0.0;
        jac.(base).(r1) <- 1.0;
        jac.(base + 1).(r2) <- 1.0
      | None -> ()
    in
    (* row-scaled residual: each row in units of its own stamps *)
    let scaled_norm () =
      let m = ref 0.0 in
      for i = 0 to n - 1 do
        let row = jac.(i) in
        let s = ref 0.0 in
        for j = 0 to n - 1 do
          let v = Float.abs row.(j) in
          if v > !s then s := v
        done;
        let sc = if !s > 1e-12 then !s else 1.0 in
        let r = Float.abs res.(i) /. sc in
        if r > !m then m := r
      done;
      !m
    in
    let xnorm () = Float.max 1.0 (Linalg.norm_inf x) in
    let exception Fail of string in
    try
      let it = ref 0 in
      let result = ref None in
      while !result = None do
        fill ();
        let rn = scaled_norm () in
        if Float.is_nan rn then raise (Fail (rung ^ ": residual is NaN"))
        else if rn > 1e12 then raise (Fail (rung ^ ": residual diverged"))
        else if rn <= tol *. xnorm () then begin
          emit_done !it true rn;
          result := Some ({ iters = !it; residual = rn; rung } : stats)
        end
        else if !it >= max_iter then begin
          emit_done !it false rn;
          raise
            (Fail
               (Printf.sprintf "%s: no convergence after %d iterations \
                                (scaled residual %.3e)" rung !it rn))
        end
        else begin
          Obs.Metrics.incr "hb.newton_iters";
          incr it;
          match Linalg.solve jac res with
          | delta ->
            if not damped then begin
              for i = 0 to n - 1 do
                x.(i) <- x.(i) -. delta.(i)
              done;
              emit_iter !it rn (Linalg.norm_inf delta) 1.0
            end
            else begin
              (* halving line search on the scaled residual *)
              let saved = Array.copy x in
              let try_step lambda =
                Array.blit saved 0 x 0 n;
                for i = 0 to n - 1 do
                  x.(i) <- x.(i) -. (lambda *. delta.(i))
                done;
                fill ();
                scaled_norm ()
              in
              let rec damp lambda tries =
                let rn' = try_step lambda in
                if (rn' < rn && not (Float.is_nan rn')) || tries >= 8 then lambda
                else damp (lambda /. 2.0) (tries + 1)
              in
              let lambda = damp 1.0 0 in
              emit_iter !it rn (lambda *. Linalg.norm_inf delta) lambda
            end
          | exception Linalg.Singular ->
            emit_done !it false rn;
            raise (Fail (rung ^ ": singular harmonic Jacobian"))
        end
      done;
      match !result with
      | Some st -> Ok (x, st)
      | None -> Error (rung ^ ": internal solver state")
    with Fail msg -> Error msg
  end

let solve ?tol ?max_iter ?x0 asm ~probe =
  let t = System.system asm in
  let x0 =
    match x0 with Some x -> x | None -> Array.make (System.size t) 0.0
  in
  match
    Policy.escalate ~subsystem:Shil ~phase:"hb"
      [
        Policy.rung "newton"
          (attempt ?tol ?max_iter ~rung:"newton" ~damped:false asm ~probe ~x0);
        Policy.rung "damped-newton"
          (attempt ?tol ?max_iter ~rung:"damped-newton" ~damped:true asm ~probe
             ~x0);
      ]
  with
  | Ok (x, st) ->
    Obs.Metrics.incr "hb.solves";
    Obs.Metrics.observe "hb.residual" st.residual;
    (x, st)
  | Error e -> raise (Resilience.Oshil_error.Error e)
