(* Snapshot writers. Every sink consumes an immutable Registry.snapshot,
   so writing a trace never races the instrumentation that keeps
   recording while the file is produced. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file ~path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (chrome://tracing, Perfetto, speedscope) *)

let chrome_trace_string (s : Registry.snapshot) =
  let b = Buffer.create 8192 in
  let first = ref true in
  let emit str =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n  ";
    Buffer.add_string b str
  in
  Buffer.add_string b "{\"traceEvents\":[";
  emit {|{"name":"process_name","ph":"M","pid":0,"args":{"name":"oshil"}}|};
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (e : Registry.span_ev) -> e.tid) s.spans)
  in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"domain %d"}}|}
           tid tid))
    tids;
  List.iter
    (fun (e : Registry.span_ev) ->
      let args =
        match e.attrs with
        | [] -> ""
        | l ->
          Printf.sprintf ",\"args\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
                  l))
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f%s}"
           (escape e.name) (escape e.cat) e.tid (Clock.ns_to_us e.ts_ns)
           (Clock.ns_to_us e.dur_ns) args))
    s.spans;
  Buffer.add_string b "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  \"counter.%s\":\"%d\"" (escape k) v))
    s.counters;
  Buffer.add_string b "\n}}\n";
  Buffer.contents b

let chrome_trace ~path s = write_file ~path (chrome_trace_string s)

(* ------------------------------------------------------------------ *)
(* JSONL event log: one self-describing JSON object per line, the
   format `oshil stats` replays. *)

let jsonl_string (s : Registry.snapshot) =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  line {|{"type":"meta","version":1,"clock":"monotonic"}|};
  List.iter
    (fun (e : Registry.span_ev) ->
      let attrs =
        match e.attrs with
        | [] -> ""
        | l ->
          Printf.sprintf ",\"attrs\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
                  l))
      in
      line
        {|{"type":"span","name":"%s","cat":"%s","ts_ns":%Ld,"dur_ns":%Ld,"tid":%d,"depth":%d%s}|}
        (escape e.name) (escape e.cat) e.ts_ns e.dur_ns e.tid e.depth attrs)
    s.spans;
  List.iter
    (fun (k, v) -> line {|{"type":"counter","name":"%s","value":%d}|} (escape k) v)
    s.counters;
  List.iter
    (fun (k, v) -> line {|{"type":"gauge","name":"%s","value":%.17g}|} (escape k) v)
    s.gauges;
  List.iter
    (fun (k, bounds, counts) ->
      let floats a =
        String.concat "," (List.map (Printf.sprintf "%.17g") (Array.to_list a))
      in
      let ints a =
        String.concat "," (List.map string_of_int (Array.to_list a))
      in
      line {|{"type":"hist","name":"%s","bounds":[%s],"counts":[%s]}|}
        (escape k) (floats bounds) (ints counts))
    s.hists;
  Buffer.contents b

let jsonl ~path s = write_file ~path (jsonl_string s)

(* ------------------------------------------------------------------ *)
(* Human summary table *)

(* Counters promised by the CLI contract: `oshil stats` always shows
   these rows (zero when the trace never touched that layer) so a
   missing layer is visible as 0 rather than silently absent. *)
let headline_counters = [ "spice.newton.iters"; "shil.grid.f_evals" ]

type agg = { mutable count : int; mutable total_ns : int64; mutable max_ns : int64 }

let summary ppf (s : Registry.snapshot) =
  let open Format in
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Registry.span_ev) ->
      let a =
        match Hashtbl.find_opt by_name e.name with
        | Some a -> a
        | None ->
          let a = { count = 0; total_ns = 0L; max_ns = 0L } in
          Hashtbl.add by_name e.name a;
          a
      in
      a.count <- a.count + 1;
      a.total_ns <- Int64.add a.total_ns e.dur_ns;
      if Int64.compare e.dur_ns a.max_ns > 0 then a.max_ns <- e.dur_ns)
    s.spans;
  let spans =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b.total_ns a.total_ns)
  in
  fprintf ppf "@[<v>== spans (by total time)@,";
  if spans = [] then fprintf ppf "  (none recorded)@,"
  else begin
    fprintf ppf "  %-36s %8s %12s %12s %12s@," "name" "count" "total ms"
      "mean ms" "max ms";
    List.iter
      (fun (name, a) ->
        fprintf ppf "  %-36s %8d %12.3f %12.4f %12.3f@," name a.count
          (Clock.ns_to_ms a.total_ns)
          (Clock.ns_to_ms a.total_ns /. float_of_int a.count)
          (Clock.ns_to_ms a.max_ns))
      spans
  end;
  fprintf ppf "== counters@,";
  let counters =
    List.fold_left
      (fun acc h -> if List.mem_assoc h acc then acc else acc @ [ (h, 0) ])
      s.counters headline_counters
  in
  List.iter (fun (k, v) -> fprintf ppf "  %-44s %14d@," k v) counters;
  if s.gauges <> [] then begin
    fprintf ppf "== gauges@,";
    List.iter (fun (k, v) -> fprintf ppf "  %-44s %14g@," k v) s.gauges
  end;
  if s.hists <> [] then begin
    fprintf ppf "== histograms@,";
    List.iter
      (fun (k, bounds, counts) ->
        let total = Array.fold_left ( + ) 0 counts in
        fprintf ppf "  %s (%d samples)@," k total;
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length bounds then
                fprintf ppf "    <= %-12g %10d@," bounds.(i) c
              else fprintf ppf "    >  %-12g %10d@," bounds.(i - 1) c)
          counts)
      s.hists
  end;
  fprintf ppf "@]"
