(* Snapshot writers. Every sink consumes an immutable Registry.snapshot,
   so writing a trace never races the instrumentation that keeps
   recording while the file is produced. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_file ~path content =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (chrome://tracing, Perfetto, speedscope) *)

let chrome_trace_string (s : Registry.snapshot) =
  let b = Buffer.create 8192 in
  let first = ref true in
  let emit str =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n  ";
    Buffer.add_string b str
  in
  Buffer.add_string b "{\"traceEvents\":[";
  emit {|{"name":"process_name","ph":"M","pid":0,"args":{"name":"oshil"}}|};
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (e : Registry.span_ev) -> e.tid) s.spans)
  in
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           {|{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"domain %d"}}|}
           tid tid))
    tids;
  List.iter
    (fun (e : Registry.span_ev) ->
      let args =
        match e.attrs with
        | [] -> ""
        | l ->
          Printf.sprintf ",\"args\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
                  l))
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f%s}"
           (escape e.name) (escape e.cat) e.tid (Clock.ns_to_us e.ts_ns)
           (Clock.ns_to_us e.dur_ns) args))
    s.spans;
  Buffer.add_string b "\n],\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{";
  let first = ref true in
  List.iter
    (fun (k, v) ->
      if !first then first := false else Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n  \"counter.%s\":\"%d\"" (escape k) v))
    s.counters;
  Buffer.add_string b "\n}}\n";
  Buffer.contents b

let chrome_trace ~path s = write_file ~path (chrome_trace_string s)

(* ------------------------------------------------------------------ *)
(* JSONL event log: one self-describing JSON object per line, the
   format `oshil stats` replays. *)

(* Finite floats print as %.17g (round-trips exactly); nan becomes
   null and infinities become out-of-double-range literals that
   [float_of_string] reads back as infinity. Keeps every line valid
   JSON without losing the value. *)
let jnum v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else if Float.is_nan v then "null"
  else if v > 0.0 then "1e999"
  else "-1e999"

let jbool v = if v then "true" else "false"

let event_line (e : Registry.event_ev) =
  let ctx_fields (c : Registry.solve_ctx) =
    Printf.sprintf {|"solver":"%s","rung":"%s"%s|} (escape c.solver)
      (escape c.rung)
      (match c.cell with
      | None -> ""
      | Some (phi, a) ->
        Printf.sprintf {|,"phi":%s,"a":%s|} (jnum phi) (jnum a))
  in
  let head ev = Printf.sprintf {|{"type":"event","ev":"%s","ts_ns":%Ld,"tid":%d|} ev e.ts_ns e.tid in
  match e.payload with
  | Newton_iter { ctx; iter; residual; step; damping } ->
    Printf.sprintf {|%s,%s,"iter":%d,"res":%s,"step":%s,"damp":%s}|}
      (head "newton_iter") (ctx_fields ctx) iter (jnum residual) (jnum step)
      (jnum damping)
  | Newton_done { ctx; iters; converged; residual } ->
    Printf.sprintf {|%s,%s,"iters":%d,"converged":%s,"res":%s}|}
      (head "newton_done") (ctx_fields ctx) iters (jbool converged)
      (jnum residual)
  | Tran_step { t; dt; accepted; lte } ->
    Printf.sprintf {|%s,"t":%s,"dt":%s,"accepted":%s,"lte":%s}|}
      (head "tran_step") (jnum t) (jnum dt) (jbool accepted) (jnum lte)
  | Bracket { site; lo; hi; probe; hit } ->
    Printf.sprintf {|%s,"site":"%s","lo":%s,"hi":%s,"probe":%s,"hit":%s}|}
      (head "bracket") (escape site) (jnum lo) (jnum hi) (jnum probe)
      (jbool hit)
  | Cache_access { kind; outcome } ->
    Printf.sprintf {|%s,"kind":"%s","outcome":"%s"}|} (head "cache")
      (escape kind) (escape outcome)
  | Pool_sample { domains; tasks; busy_ns } ->
    Printf.sprintf {|%s,"domains":%d,"tasks":%d,"busy_ns":%Ld}|} (head "pool")
      domains tasks busy_ns
  | Gc_sample
      { where; minor_words; promoted_words; major_words; minor_gcs; major_gcs;
        heap_words } ->
    Printf.sprintf
      {|%s,"where":"%s","minor_words":%s,"promoted_words":%s,"major_words":%s,"minor_gcs":%d,"major_gcs":%d,"heap_words":%d}|}
      (head "gc") (escape where) (jnum minor_words) (jnum promoted_words)
      (jnum major_words) minor_gcs major_gcs heap_words

let jsonl_string (s : Registry.snapshot) =
  let b = Buffer.create 8192 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  line {|{"type":"meta","version":1,"clock":"monotonic"}|};
  List.iter
    (fun (e : Registry.span_ev) ->
      let attrs =
        match e.attrs with
        | [] -> ""
        | l ->
          Printf.sprintf ",\"attrs\":{%s}"
            (String.concat ","
               (List.map
                  (fun (k, v) ->
                    Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
                  l))
      in
      line
        {|{"type":"span","name":"%s","cat":"%s","ts_ns":%Ld,"dur_ns":%Ld,"tid":%d,"depth":%d%s}|}
        (escape e.name) (escape e.cat) e.ts_ns e.dur_ns e.tid e.depth attrs)
    s.spans;
  List.iter (fun e -> line "%s" (event_line e)) s.events;
  List.iter
    (fun (k, v) -> line {|{"type":"counter","name":"%s","value":%d}|} (escape k) v)
    s.counters;
  List.iter
    (fun (k, v) -> line {|{"type":"gauge","name":"%s","value":%.17g}|} (escape k) v)
    s.gauges;
  List.iter
    (fun (k, bounds, counts) ->
      let floats a =
        String.concat "," (List.map (Printf.sprintf "%.17g") (Array.to_list a))
      in
      let ints a =
        String.concat "," (List.map string_of_int (Array.to_list a))
      in
      line {|{"type":"hist","name":"%s","bounds":[%s],"counts":[%s]}|}
        (escape k) (floats bounds) (ints counts))
    s.hists;
  Buffer.contents b

(* [path = "-"] streams to stderr so `oshil … --trace - 2>t.jsonl | …`
   composes in pipelines without touching the filesystem. *)
let jsonl ~path s =
  if path = "-" then begin
    output_string stderr (jsonl_string s);
    flush stderr
  end
  else write_file ~path (jsonl_string s)

(* ------------------------------------------------------------------ *)
(* Human summary table *)

(* Counters promised by the CLI contract: `oshil stats` always shows
   these rows (zero when the trace never touched that layer) so a
   missing layer is visible as 0 rather than silently absent. *)
let headline_counters = [ "spice.newton.iters"; "shil.grid.f_evals" ]

(* Bucketed quantile: the upper bound of the bucket holding the target
   rank. Conservative (never under-reports) and deterministic; samples
   past the last bound clamp to it. nan when the histogram is empty. *)
let quantile bounds counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then Float.nan
  else begin
    let target =
      let t = int_of_float (Float.of_int total *. q +. 0.5) in
      if t < 1 then 1 else if t > total then total else t
    in
    let nb = Array.length bounds in
    let res = ref Float.nan in
    let cum = ref 0 in
    Array.iteri
      (fun i c ->
        cum := !cum + c;
        if Float.is_nan !res && !cum >= target then
          res := bounds.(if i < nb then i else nb - 1))
      counts;
    !res
  end

type agg = { mutable count : int; mutable total_ns : int64; mutable max_ns : int64 }

let summary ppf (s : Registry.snapshot) =
  let open Format in
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Registry.span_ev) ->
      let a =
        match Hashtbl.find_opt by_name e.name with
        | Some a -> a
        | None ->
          let a = { count = 0; total_ns = 0L; max_ns = 0L } in
          Hashtbl.add by_name e.name a;
          a
      in
      a.count <- a.count + 1;
      a.total_ns <- Int64.add a.total_ns e.dur_ns;
      if Int64.compare e.dur_ns a.max_ns > 0 then a.max_ns <- e.dur_ns)
    s.spans;
  let spans =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b.total_ns a.total_ns)
  in
  fprintf ppf "@[<v>== spans (by total time)@,";
  if spans = [] then fprintf ppf "  (none recorded)@,"
  else begin
    fprintf ppf "  %-36s %8s %12s %12s %12s@," "name" "count" "total ms"
      "mean ms" "max ms";
    List.iter
      (fun (name, a) ->
        fprintf ppf "  %-36s %8d %12.3f %12.4f %12.3f@," name a.count
          (Clock.ns_to_ms a.total_ns)
          (Clock.ns_to_ms a.total_ns /. float_of_int a.count)
          (Clock.ns_to_ms a.max_ns))
      spans
  end;
  fprintf ppf "== counters@,";
  let counters =
    List.fold_left
      (fun acc h -> if List.mem_assoc h acc then acc else acc @ [ (h, 0) ])
      s.counters headline_counters
  in
  List.iter (fun (k, v) -> fprintf ppf "  %-44s %14d@," k v) counters;
  if s.gauges <> [] then begin
    fprintf ppf "== gauges@,";
    List.iter (fun (k, v) -> fprintf ppf "  %-44s %14g@," k v) s.gauges
  end;
  if s.hists <> [] then begin
    fprintf ppf "== histograms@,";
    List.iter
      (fun (k, bounds, counts) ->
        let total = Array.fold_left ( + ) 0 counts in
        fprintf ppf "  %s (%d samples)@," k total;
        if total > 0 then
          fprintf ppf "    p50 <= %-10g p90 <= %-10g p99 <= %-10g@,"
            (quantile bounds counts 0.50) (quantile bounds counts 0.90)
            (quantile bounds counts 0.99);
        Array.iteri
          (fun i c ->
            if c > 0 then
              if i < Array.length bounds then
                fprintf ppf "    <= %-12g %10d@," bounds.(i) c
              else fprintf ppf "    >  %-12g %10d@," bounds.(i - 1) c)
          counts)
      s.hists
  end;
  fprintf ppf "@]"
