(** Trace and metric sinks over a merged {!Registry.snapshot}.

    Three formats, one data model:
    - {!chrome_trace}: Chrome [trace_event] JSON, loadable in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto} —
      spans become ["ph":"X"] complete events on one track per domain,
      counters ride along in [otherData].
    - {!jsonl}: one self-describing JSON object per line (spans,
      introspection events, counters, gauges, histograms) — the durable
      format that [oshil stats] replays and tests round-trip via
      {!Trace_read}.
    - {!summary}: a human table — per-span totals (sorted by total
      time), counters, gauges and histogram buckets with p50/p90/p99
      quantile estimates.

    File sinks create missing parent directories. *)

val escape : string -> string
(** JSON string-body escaping shared by the sinks and {!Report}. *)

val chrome_trace : path:string -> Registry.snapshot -> unit
val chrome_trace_string : Registry.snapshot -> string

val jsonl : path:string -> Registry.snapshot -> unit
(** The path ["-"] streams the JSONL log to stderr instead of a file,
    so traced runs compose in shell pipelines. *)

val jsonl_string : Registry.snapshot -> string

val quantile : float array -> int array -> float -> float
(** [quantile bounds counts q] estimates the [q]-quantile of a bucketed
    histogram as the upper bound of the bucket holding the target rank
    — conservative and deterministic. Samples past the last bound clamp
    to it; nan when the histogram is empty. *)

val headline_counters : string list
(** Counters the summary always prints (as 0 when absent):
    [spice.newton.iters] and [shil.grid.f_evals]. *)

val summary : Format.formatter -> Registry.snapshot -> unit
