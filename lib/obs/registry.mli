(** Telemetry event storage: per-domain buffers merged on demand.

    Library-internal plumbing shared by {!Span}, {!Metrics} and the
    sinks; user code should go through the [Obs] facade. The design
    contract: hot-path writes touch only the writing domain's buffer
    (one uncontended mutex round-trip), the global [enabled] flag is a
    single atomic load when telemetry is off, and nothing here feeds
    back into numeric results — instrumentation is observation only. *)

val enabled : bool Atomic.t
(** Master switch. Off (the default) means every instrumentation entry
    point is a load-and-branch no-op. *)

type span_ev = {
  name : string;  (** stable dotted name, e.g. ["shil.grid.sample"] *)
  cat : string;  (** coarse category, e.g. ["shil"] *)
  ts_ns : int64;  (** start, monotonic ns since process start *)
  dur_ns : int64;
  tid : int;  (** domain id that ran the span *)
  depth : int;  (** nesting depth within its domain, 0 = top level *)
  attrs : (string * string) list;
}

type dbuf
(** One domain's private buffer. *)

val my_buf : unit -> dbuf
(** The calling domain's buffer, created and registered on first use. *)

val live_depth : dbuf -> int
(** Current span-nesting depth. Owner domain only. *)

val set_live_depth : dbuf -> int -> unit
val buf_dom : dbuf -> int

val add_span : dbuf -> span_ev -> unit
val counter_add : dbuf -> string -> int -> unit
val gauge_set : dbuf -> string -> float -> unit

val register_histogram : name:string -> buckets:float array -> unit
(** Idempotent; raises [Invalid_argument] on empty, non-finite or
    non-ascending bounds. A value [v] lands in the first bucket with
    [v <= bound]; values above the last bound land in an overflow
    slot, so counts arrays have [length bounds + 1] entries. *)

val observe : dbuf -> string -> float -> unit
(** Samples against the registered bounds; drops the sample if the
    histogram name was never registered. *)

(** {1 Merged view} *)

type snapshot = {
  spans : span_ev list;  (** sorted by [ts_ns], then domain id *)
  counters : (string * int) list;  (** summed across domains, sorted *)
  gauges : (string * float) list;  (** last write (by timestamp) wins *)
  hists : (string * float array * int array) list;
      (** name, bucket bounds, per-bucket counts (+ overflow slot) *)
}

val snapshot : unit -> snapshot
(** Non-destructive merge of every domain's buffer. *)

val counter_value : string -> int
(** Current merged value of one counter (0 if never incremented). *)

val reset : unit -> unit
(** Clears all buffered events and metric state (histogram bucket
    {e definitions} survive). *)
