(** Telemetry event storage: per-domain buffers merged on demand.

    Library-internal plumbing shared by {!Span}, {!Metrics} and the
    sinks; user code should go through the [Obs] facade. The design
    contract: hot-path writes touch only the writing domain's buffer
    (one uncontended mutex round-trip), the global [enabled] flag is a
    single atomic load when telemetry is off, and nothing here feeds
    back into numeric results — instrumentation is observation only. *)

val enabled : bool Atomic.t
(** Master switch. Off (the default) means every instrumentation entry
    point is a load-and-branch no-op. *)

val events_enabled : bool Atomic.t
(** Independent switch for the introspection {e event} stream (per
    Newton iteration, per transient step, …). Off by default even when
    [enabled] is on, because events are much higher-volume than spans.
    Same contract: one atomic load when off, observation only. *)

type span_ev = {
  name : string;  (** stable dotted name, e.g. ["shil.grid.sample"] *)
  cat : string;  (** coarse category, e.g. ["shil"] *)
  ts_ns : int64;  (** start, monotonic ns since process start *)
  dur_ns : int64;
  tid : int;  (** domain id that ran the span *)
  depth : int;  (** nesting depth within its domain, 0 = top level *)
  attrs : (string * string) list;
}

type solve_ctx = {
  solver : string;  (** engine, e.g. ["spice.op"], ["shil.refine"] *)
  rung : string;  (** recovery rung label, e.g. ["gmin=1e-4"]; [""] = direct *)
  cell : (float * float) option;  (** (phi, A) grid cell, when applicable *)
}
(** Identity of one nonlinear solve, attached to convergence events. *)

(** One introspection record. Every constructor is pure observation:
    emitting (or not emitting) an event never feeds back into numeric
    results. *)
type event_payload =
  | Newton_iter of {
      ctx : solve_ctx;
      iter : int;  (** 1-based iteration index within the solve *)
      residual : float;  (** residual norm entering the update *)
      step : float;  (** applied update norm (after clamp/damping) *)
      damping : float;  (** applied step fraction; 1.0 = full Newton *)
    }
  | Newton_done of {
      ctx : solve_ctx;
      iters : int;
      converged : bool;
      residual : float;  (** final residual norm *)
    }
  | Tran_step of {
      t : float;  (** time at the start of the step *)
      dt : float;
      accepted : bool;
      lte : float;  (** local truncation error estimate; nan if none *)
    }
  | Bracket of {
      site : string;  (** e.g. ["shil.lockrange.phi_d"] *)
      lo : float;
      hi : float;
      probe : float;
      hit : bool;  (** probe satisfied the bracket predicate *)
    }
  | Cache_access of {
      kind : string;  (** key kind, e.g. ["shil.grid"] *)
      outcome : string;  (** ["memory"], ["disk"] or ["miss"] *)
    }
  | Pool_sample of { domains : int; tasks : int; busy_ns : int64 }
  | Gc_sample of {
      where : string;  (** span name at whose boundary this was taken *)
      minor_words : float;
      promoted_words : float;
      major_words : float;
      minor_gcs : int;
      major_gcs : int;
      heap_words : int;
    }

type event_ev = { ts_ns : int64; tid : int; payload : event_payload }

type dbuf
(** One domain's private buffer. *)

val my_buf : unit -> dbuf
(** The calling domain's buffer, created and registered on first use. *)

val live_depth : dbuf -> int
(** Current span-nesting depth. Owner domain only. *)

val set_live_depth : dbuf -> int -> unit
val buf_dom : dbuf -> int

val add_span : dbuf -> span_ev -> unit

val add_event : dbuf -> event_ev -> unit
(** Buffers an introspection event; beyond a per-domain cap further
    events are dropped and counted under [obs.events_dropped]. *)

val counter_add : dbuf -> string -> int -> unit
val gauge_set : dbuf -> string -> float -> unit

val register_histogram : name:string -> buckets:float array -> unit
(** Idempotent; raises [Invalid_argument] on empty, non-finite or
    non-ascending bounds. A value [v] lands in the first bucket with
    [v <= bound]; values above the last bound land in an overflow
    slot, so counts arrays have [length bounds + 1] entries. *)

val observe : dbuf -> string -> float -> unit
(** Samples against the registered bounds; drops the sample if the
    histogram name was never registered. *)

(** {1 Merged view} *)

type snapshot = {
  spans : span_ev list;  (** sorted by [ts_ns], then domain id *)
  events : event_ev list;  (** sorted by [ts_ns], then domain id *)
  counters : (string * int) list;  (** summed across domains, sorted *)
  gauges : (string * float) list;  (** last write (by timestamp) wins *)
  hists : (string * float array * int array) list;
      (** name, bucket bounds, per-bucket counts (+ overflow slot) *)
}

val snapshot : unit -> snapshot
(** Non-destructive merge of every domain's buffer. *)

val counter_value : string -> int
(** Current merged value of one counter (0 if never incremented). *)

val reset : unit -> unit
(** Clears all buffered events and metric state (histogram bucket
    {e definitions} survive). *)
