(** Runtime telemetry: hierarchical spans, counters/gauges/histograms,
    and trace sinks (Chrome [trace_event], JSONL, human summary).

    Everything is {b off by default}: each instrumentation point in the
    library is a single atomic load and branch until telemetry is
    switched on, and enabling it never changes numerical results (the
    parallel-vs-sequential bit-identity tests run with tracing on).

    Typical wiring, done once near the program entry point:
    {[
      Obs.configure_from_env ();          (* OSHIL_TRACE / OSHIL_METRICS *)
      Obs.trace_to_file "out/trace.json"  (* or explicit --trace flag *)
    ]}
    Sinks are written by an [at_exit] flush (and on demand via
    {!flush}); [.jsonl] paths select the JSONL event log, anything else
    the Chrome trace. *)

module Clock = Clock
module Registry = Registry
module Span = Span
module Metrics = Metrics
module Event = Event
module Sink = Sink
module Trace_read = Trace_read
module Report = Report

val enabled : unit -> bool
(** Whether telemetry recording is currently on. *)

val set_enabled : bool -> unit
(** Turn recording on or off. Cheap and safe at any time; events
    recorded so far are kept. *)

val events_enabled : unit -> bool
(** Whether the introspection {e event} stream ({!Event}) is on. Off
    by default even when spans are on — events are per-iteration
    volume. *)

val set_events_enabled : bool -> unit
(** Turn the introspection event stream on or off. *)

val snapshot : unit -> Registry.snapshot
(** Merge all per-domain buffers into one consistent snapshot
    (non-destructive — recording continues). *)

val reset : unit -> unit
(** Discard all recorded events and metric values. Intended for tests
    and for before/after deltas around a measured region. *)

val configure :
  ?chrome_file:string -> ?jsonl_file:string -> ?summary:bool ->
  ?enabled:bool -> ?events:bool -> unit -> unit
(** Set process-wide sink destinations. The first call that configures
    any sink registers an [at_exit] {!flush}. Each optional argument
    only overrides the corresponding setting when present, so
    [configure_from_env] and explicit CLI flags compose. *)

val trace_to_file : string -> unit
(** [trace_to_file path] enables telemetry and routes the trace to
    [path]: JSONL event log if [path] ends in [.jsonl], Chrome
    [trace_event] JSON otherwise. The path ["-"] streams JSONL to
    stderr, so [oshil … --trace - 2>t.jsonl | …] works in pipelines. *)

val configure_from_env : unit -> unit
(** Read [OSHIL_TRACE] (trace file path, as {!trace_to_file}),
    [OSHIL_EVENTS] ([1]/[true]/[yes] — record introspection events)
    and [OSHIL_METRICS] ([1]/[true]/[yes] — print the summary table to
    stderr at exit). Unset or empty variables change nothing. *)

val flush : unit -> unit
(** Write all configured sinks from a fresh snapshot now. Idempotent;
    also runs automatically at exit once a sink is configured. *)
