let with_ ?(cat = "oshil") ?(attrs = []) ~name f =
  if not (Atomic.get Registry.enabled) then f ()
  else begin
    let b = Registry.my_buf () in
    let d = Registry.live_depth b in
    Registry.set_live_depth b (d + 1);
    let t0 = Clock.since_start_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.since_start_ns () in
        Registry.set_live_depth b d;
        Registry.add_span b
          {
            Registry.name;
            cat;
            ts_ns = t0;
            dur_ns = Int64.sub t1 t0;
            tid = Registry.buf_dom b;
            depth = d;
            attrs;
          };
        Event.gc_sample ~where:name ())
      f
  end
