(** The single time source for all oshil instrumentation.

    Every span, pool-utilization figure and bench timing goes through
    this module so traces from different layers share one clock and can
    be laid on one timeline. Backed by [CLOCK_MONOTONIC] (via the tiny
    bechamel stub already in the dependency set), so timestamps never
    jump backwards under NTP adjustments the way [Unix.gettimeofday]
    can. The repo linter ([tools/mlint.ml], rule [direct-clock])
    enforces that no library code outside [lib/obs] calls
    [Unix.gettimeofday] or [Sys.time] directly. *)

val now_ns : unit -> int64
(** Monotonic nanoseconds from an arbitrary origin. *)

val since_start_ns : unit -> int64
(** Monotonic nanoseconds since this module was initialised (roughly
    process start). All recorded span timestamps use this origin. *)

val wall_s : unit -> float
(** Monotonic seconds as a float — the drop-in replacement for
    [Unix.gettimeofday] deltas in timing code. Only differences are
    meaningful. *)

val ns_to_ms : int64 -> float
val ns_to_us : int64 -> float
