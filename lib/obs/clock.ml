let now_ns = Monotonic_clock.now

let t0 = now_ns ()

let since_start_ns () = Int64.sub (now_ns ()) t0

let wall_s () = Int64.to_float (now_ns ()) /. 1e9

let ns_to_ms ns = Int64.to_float ns /. 1e6

let ns_to_us ns = Int64.to_float ns /. 1e3
