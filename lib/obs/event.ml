(* Typed introspection events: the solver-health stream.

   Gated independently from spans because the volume differs by orders
   of magnitude (one event per Newton iteration vs one span per solve
   phase). Emission is a single atomic load and branch when off, and by
   contract never feeds back into numeric results. *)

type solve_ctx = Registry.solve_ctx = {
  solver : string;
  rung : string;
  cell : (float * float) option;
}

type payload = Registry.event_payload =
  | Newton_iter of {
      ctx : solve_ctx;
      iter : int;
      residual : float;
      step : float;
      damping : float;
    }
  | Newton_done of {
      ctx : solve_ctx;
      iters : int;
      converged : bool;
      residual : float;
    }
  | Tran_step of { t : float; dt : float; accepted : bool; lte : float }
  | Bracket of { site : string; lo : float; hi : float; probe : float; hit : bool }
  | Cache_access of { kind : string; outcome : string }
  | Pool_sample of { domains : int; tasks : int; busy_ns : int64 }
  | Gc_sample of {
      where : string;
      minor_words : float;
      promoted_words : float;
      major_words : float;
      minor_gcs : int;
      major_gcs : int;
      heap_words : int;
    }

let enabled () = Atomic.get Registry.events_enabled
let set_enabled b = Atomic.set Registry.events_enabled b

let ctx ?rung ?cell solver =
  { solver; rung = Option.value ~default:"" rung; cell }

let emit payload =
  if Atomic.get Registry.events_enabled then begin
    let b = Registry.my_buf () in
    Registry.add_event b
      {
        Registry.ts_ns = Clock.since_start_ns ();
        tid = Registry.buf_dom b;
        payload;
      }
  end

(* [Gc.quick_stat] is the one sanctioned allocation probe; everything
   outside lib/obs goes through this sampler (enforced by the mlint
   [direct-gc] rule). *)
let gc_sample ~where () =
  if Atomic.get Registry.events_enabled then begin
    let g = Gc.quick_stat () in
    emit
      (Gc_sample
         {
           where;
           minor_words = g.Gc.minor_words;
           promoted_words = g.Gc.promoted_words;
           major_words = g.Gc.major_words;
           minor_gcs = g.Gc.minor_collections;
           major_gcs = g.Gc.major_collections;
           heap_words = g.Gc.heap_words;
         })
  end
