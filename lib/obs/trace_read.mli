(** Read JSONL traces ({!Sink.jsonl} output) back into a
    {!Registry.snapshot} — the engine behind [oshil stats].

    Merging semantics when loading several files (or several flushes
    appended to one file): counters sum, histograms with identical
    buckets sum elementwise, gauges are last-read-wins, spans
    concatenate and re-sort by timestamp. Timestamps from different
    processes share no clock origin, so cross-file span orderings are
    only meaningful per file. *)

exception Parse_error of string
(** Raised with a [file:line: reason] message on malformed input. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_of_string : string -> json
(** Parse one complete JSON value; raises {!Parse_error} on malformed
    input or trailing garbage. Exposed for tests that validate the
    Chrome-trace sink output is well-formed JSON. *)

val load : string -> Registry.snapshot
(** Load one JSONL trace file. Raises {!Parse_error} on malformed
    lines and [Sys_error] if the file cannot be read. *)

val load_many : string list -> Registry.snapshot
(** Load and merge several JSONL trace files. *)
