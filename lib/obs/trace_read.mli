(** Read JSONL traces ({!Sink.jsonl} output) back into a
    {!Registry.snapshot} — the engine behind [oshil stats].

    Merging semantics when loading several files (or several flushes
    appended to one file): counters sum, histograms with identical
    buckets sum elementwise, gauges take the maximum value, spans and
    introspection events concatenate and re-sort under a total order
    (timestamp, domain id, then every remaining field) — so the merged
    snapshot is independent of the order the files were passed in.
    Timestamps from different processes share no clock origin, so
    cross-file span orderings are only meaningful per file. *)

exception Parse_error of string
(** Raised with a [file:line: reason] message on malformed input. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_of_string : string -> json
(** Parse one complete JSON value; raises {!Parse_error} on malformed
    input or trailing garbage. Exposed for tests that validate the
    Chrome-trace sink output is well-formed JSON. *)

val load : string -> Registry.snapshot
(** Load one JSONL trace file. Raises {!Parse_error} on malformed
    lines and [Sys_error] if the file cannot be read. *)

val load_many : string list -> Registry.snapshot
(** Load and merge several JSONL trace files. *)
