(* Facade for the telemetry layer: re-exports the submodules and owns
   the process-wide sink configuration + at_exit flush. *)

module Clock = Clock
module Registry = Registry
module Span = Span
module Metrics = Metrics
module Event = Event
module Sink = Sink
module Trace_read = Trace_read
module Report = Report

let enabled () = Atomic.get Registry.enabled
let set_enabled b = Atomic.set Registry.enabled b
let events_enabled () = Atomic.get Registry.events_enabled
let set_events_enabled b = Atomic.set Registry.events_enabled b
let snapshot = Registry.snapshot
let reset = Registry.reset

type config = {
  mutable chrome : string option;
  mutable jsonl : string option;
  mutable summary : bool;
  mutable flush_registered : bool;
}

let config_mu = Mutex.create ()
let config =
  { chrome = None; jsonl = None; summary = false; flush_registered = false }

let flush () =
  let chrome, jsonl, summary =
    Mutex.lock config_mu;
    let c = (config.chrome, config.jsonl, config.summary) in
    Mutex.unlock config_mu;
    c
  in
  if chrome <> None || jsonl <> None || summary then begin
    let s = snapshot () in
    Option.iter (fun path -> Sink.chrome_trace ~path s) chrome;
    Option.iter (fun path -> Sink.jsonl ~path s) jsonl;
    if summary then Format.eprintf "%a@." Sink.summary s
  end

let configure ?chrome_file ?jsonl_file ?summary ?enabled ?events () =
  Mutex.lock config_mu;
  Option.iter (fun p -> config.chrome <- Some p) chrome_file;
  Option.iter (fun p -> config.jsonl <- Some p) jsonl_file;
  Option.iter (fun b -> config.summary <- b) summary;
  let need_flush =
    (config.chrome <> None || config.jsonl <> None || config.summary)
    && not config.flush_registered
  in
  if need_flush then config.flush_registered <- true;
  Mutex.unlock config_mu;
  (* Registered lazily at configure time, i.e. after module-init
     at_exit handlers such as the pool shutdown — LIFO order then runs
     this flush first, while worker domains are still alive. *)
  if need_flush then at_exit flush;
  Option.iter set_enabled enabled;
  Option.iter set_events_enabled events

(* "-" routes the JSONL log to stderr (pipeline-friendly); a ".jsonl"
   suffix selects the JSONL file sink, anything else the Chrome
   trace. *)
let trace_to_file path =
  if path = "-" || Filename.check_suffix path ".jsonl" then
    configure ~jsonl_file:path ~enabled:true ()
  else configure ~chrome_file:path ~enabled:true ()

let configure_from_env () =
  (match Sys.getenv_opt "OSHIL_TRACE" with
  | Some path when path <> "" -> trace_to_file path
  | _ -> ());
  (match Sys.getenv_opt "OSHIL_EVENTS" with
  | Some ("1" | "true" | "yes") -> configure ~events:true ()
  | _ -> ());
  match Sys.getenv_opt "OSHIL_METRICS" with
  | Some ("1" | "true" | "yes") -> configure ~summary:true ~enabled:true ()
  | _ -> ()
