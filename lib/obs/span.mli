(** Hierarchical timed spans.

    [with_ ~name f] runs [f ()]; when telemetry is enabled it also
    records a completed-span event (monotonic start timestamp,
    duration, owning domain, nesting depth). Spans nest lexically per
    domain — the depth of a span is the number of enclosing [with_]
    calls still live on the same domain — which is exactly the
    stack-shape Chrome's trace viewer reconstructs from the timestamps.

    When telemetry is disabled the call is one atomic load and a branch
    before tail-calling [f], so instrumented hot paths stay within the
    repo's off-by-default overhead contract. Exceptions from [f]
    propagate unchanged; the span is still recorded (its duration then
    covers up to the raise). *)

val with_ :
  ?cat:string -> ?attrs:(string * string) list -> name:string ->
  (unit -> 'a) -> 'a
(** [cat] defaults to ["oshil"]; use the layer name (["spice"],
    ["shil"], ["numerics"]) so trace viewers can colour by layer.
    [attrs] are small string pairs shown in the trace viewer's detail
    pane — keep them O(1) per span. *)
