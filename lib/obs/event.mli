(** Typed introspection events: per-iteration solver-health records.

    A second telemetry stream next to spans, {b off by default even
    when spans are on} — one event per Newton iteration or transient
    step adds up fast. Every entry point is a single atomic load and
    branch while the stream is off, and emitting events never changes
    numeric results (bit-identity is covered by tests).

    Events land in the same per-domain buffers as spans, appear in
    {!Registry.snapshot}, are written by {!Sink.jsonl} as
    [{"type":"event",...}] lines, read back by {!Trace_read}, and
    aggregated into run-health reports by {!Report}. *)

type solve_ctx = Registry.solve_ctx = {
  solver : string;
  rung : string;
  cell : (float * float) option;
}

type payload = Registry.event_payload =
  | Newton_iter of {
      ctx : solve_ctx;
      iter : int;
      residual : float;
      step : float;
      damping : float;
    }
  | Newton_done of {
      ctx : solve_ctx;
      iters : int;
      converged : bool;
      residual : float;
    }
  | Tran_step of { t : float; dt : float; accepted : bool; lte : float }
  | Bracket of { site : string; lo : float; hi : float; probe : float; hit : bool }
  | Cache_access of { kind : string; outcome : string }
  | Pool_sample of { domains : int; tasks : int; busy_ns : int64 }
  | Gc_sample of {
      where : string;
      minor_words : float;
      promoted_words : float;
      major_words : float;
      minor_gcs : int;
      major_gcs : int;
      heap_words : int;
    }

val enabled : unit -> bool
(** Whether the event stream is currently recording. *)

val set_enabled : bool -> unit
(** Turn the event stream on or off (independent of spans). *)

val ctx : ?rung:string -> ?cell:float * float -> string -> solve_ctx
(** [ctx ?rung ?cell solver] builds a solve identity; [rung] defaults
    to [""] (direct solve). *)

val emit : payload -> unit
(** Record one event with the current timestamp and domain id. No-op
    (one atomic load) while the stream is off. *)

val gc_sample : where:string -> unit -> unit
(** Sample [Gc.quick_stat] and emit a {!Gc_sample} tagged with the
    span name [where]. Called at span boundaries by {!Span.with_}. *)
