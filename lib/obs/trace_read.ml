(* Replay a JSONL trace (Sink.jsonl output) back into a
   Registry.snapshot so `oshil stats` can summarise runs after the
   fact. The parser is a small recursive-descent JSON reader — enough
   for the sink's own output plus reasonable hand-edited traces; it is
   not meant as a general-purpose JSON library. *)

exception Parse_error of string

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

type st = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  let n = String.length st.src in
  while
    st.pos < n
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some c' when Char.equal c c' -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail st "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          (* Only BMP codepoints; the sink never emits surrogate
             pairs (it only \u-escapes control characters). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail st "bad escape");
        go ())
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char b c;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < n && is_num_char st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail st (Printf.sprintf "bad number %S" s)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    st.pos <- st.pos + 1;
    Obj []
  end
  else begin
    let rec fields acc =
      skip_ws st;
      let k = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        st.pos <- st.pos + 1;
        fields ((k, v) :: acc)
      | Some '}' ->
        st.pos <- st.pos + 1;
        Obj (List.rev ((k, v) :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    fields []
  end

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    st.pos <- st.pos + 1;
    Arr []
  end
  else begin
    let rec elems acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        st.pos <- st.pos + 1;
        elems (v :: acc)
      | Some ']' ->
        st.pos <- st.pos + 1;
        Arr (List.rev (v :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    elems []
  end

let json_of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------------------------------------------------------------- *)
(* JSONL event decoding *)

let field name fields = List.assoc_opt name fields

let str_field name fields =
  match field name fields with Some (Str s) -> Some s | _ -> None

let num_field name fields =
  match field name fields with Some (Num f) -> Some f | _ -> None

(* The sink writes non-finite floats as null (nan) or out-of-range
   literals (infinities, which [float_of_string] folds back). *)
let fnum_field name fields =
  match field name fields with
  | Some (Num f) -> Some f
  | Some Null -> Some Float.nan
  | _ -> None

let bool_field name fields =
  match field name fields with Some (Bool b) -> Some b | _ -> None

let require what = function
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing or ill-typed %s" what))

type acc = {
  mutable spans : Registry.span_ev list;
  mutable events : Registry.event_ev list;
  counters : (string, int) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
  hists : (string, float array * int array) Hashtbl.t;
}

let decode_event fields : Registry.event_payload =
  let req_f what = require what (fnum_field what fields) in
  let req_i what = int_of_float (require what (num_field what fields)) in
  let req_s what = require what (str_field what fields) in
  let req_b what = require what (bool_field what fields) in
  let ctx () : Registry.solve_ctx =
    {
      solver = req_s "solver";
      rung = Option.value ~default:"" (str_field "rung" fields);
      cell =
        (match (fnum_field "phi" fields, fnum_field "a" fields) with
        | Some phi, Some a -> Some (phi, a)
        | _ -> None);
    }
  in
  match require "event kind" (str_field "ev" fields) with
  | "newton_iter" ->
    Newton_iter
      {
        ctx = ctx ();
        iter = req_i "iter";
        residual = req_f "res";
        step = req_f "step";
        damping = req_f "damp";
      }
  | "newton_done" ->
    Newton_done
      {
        ctx = ctx ();
        iters = req_i "iters";
        converged = req_b "converged";
        residual = req_f "res";
      }
  | "tran_step" ->
    Tran_step
      {
        t = req_f "t";
        dt = req_f "dt";
        accepted = req_b "accepted";
        lte = req_f "lte";
      }
  | "bracket" ->
    Bracket
      {
        site = req_s "site";
        lo = req_f "lo";
        hi = req_f "hi";
        probe = req_f "probe";
        hit = req_b "hit";
      }
  | "cache" -> Cache_access { kind = req_s "kind"; outcome = req_s "outcome" }
  | "pool" ->
    Pool_sample
      {
        domains = req_i "domains";
        tasks = req_i "tasks";
        busy_ns = Int64.of_float (require "busy_ns" (num_field "busy_ns" fields));
      }
  | "gc" ->
    Gc_sample
      {
        where = req_s "where";
        minor_words = req_f "minor_words";
        promoted_words = req_f "promoted_words";
        major_words = req_f "major_words";
        minor_gcs = req_i "minor_gcs";
        major_gcs = req_i "major_gcs";
        heap_words = req_i "heap_words";
      }
  | ev -> raise (Parse_error (Printf.sprintf "unknown event kind %S" ev))

let decode_line acc line =
  match json_of_string line with
  | Obj fields -> (
    match str_field "type" fields with
    | Some "meta" -> ()
    | Some "span" ->
      let attrs =
        match field "attrs" fields with
        | Some (Obj kvs) ->
          List.filter_map
            (fun (k, v) -> match v with Str s -> Some (k, s) | _ -> None)
            kvs
        | _ -> []
      in
      let ev : Registry.span_ev =
        {
          name = require "span name" (str_field "name" fields);
          cat = Option.value ~default:"oshil" (str_field "cat" fields);
          ts_ns = Int64.of_float (require "ts_ns" (num_field "ts_ns" fields));
          dur_ns = Int64.of_float (require "dur_ns" (num_field "dur_ns" fields));
          tid =
            int_of_float (Option.value ~default:0. (num_field "tid" fields));
          depth =
            int_of_float (Option.value ~default:0. (num_field "depth" fields));
          attrs;
        }
      in
      acc.spans <- ev :: acc.spans
    | Some "event" ->
      let ev : Registry.event_ev =
        {
          ts_ns = Int64.of_float (require "ts_ns" (num_field "ts_ns" fields));
          tid =
            int_of_float (Option.value ~default:0. (num_field "tid" fields));
          payload = decode_event fields;
        }
      in
      acc.events <- ev :: acc.events
    | Some "counter" ->
      let name = require "counter name" (str_field "name" fields) in
      let v = int_of_float (require "counter value" (num_field "value" fields)) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt acc.counters name) in
      Hashtbl.replace acc.counters name (prev + v)
    | Some "gauge" ->
      let name = require "gauge name" (str_field "name" fields) in
      let v = require "gauge value" (num_field "value" fields) in
      (* Cross-file gauge lines carry no clock, so "last write" would
         depend on the order the files were passed in; taking the max
         keeps the merge independent of input order. *)
      let v =
        match Hashtbl.find_opt acc.gauges name with
        | Some prev -> Float.max prev v
        | None -> v
      in
      Hashtbl.replace acc.gauges name v
    | Some "hist" ->
      let name = require "hist name" (str_field "name" fields) in
      let floats = function
        | Some (Arr l) ->
          Array.of_list
            (List.map
               (function
                 | Num f -> f | _ -> raise (Parse_error "non-numeric array"))
               l)
        | _ -> raise (Parse_error "missing array field")
      in
      let bounds = floats (field "bounds" fields) in
      let counts = Array.map int_of_float (floats (field "counts" fields)) in
      (match Hashtbl.find_opt acc.hists name with
      | None -> Hashtbl.add acc.hists name (bounds, counts)
      | Some (b0, c0) when Array.length c0 = Array.length counts && b0 = bounds
        ->
        Hashtbl.replace acc.hists name
          (b0, Array.mapi (fun i c -> c + counts.(i)) c0)
      | Some _ ->
        raise
          (Parse_error
             (Printf.sprintf "histogram %S re-declared with different buckets"
                name)))
    | Some t -> raise (Parse_error (Printf.sprintf "unknown event type %S" t))
    | None -> raise (Parse_error "event without \"type\" field"))
  | _ -> raise (Parse_error "event line is not a JSON object")

(* Total orders so a merged snapshot does not depend on the order the
   input files were passed in: ties on (ts, tid) are broken by every
   remaining field. Structural compare is safe here — payloads are
   first-order data and OCaml's [compare] totally orders floats
   (including nan). *)
let span_order (a : Registry.span_ev) (b : Registry.span_ev) =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> (
    match Int.compare a.tid b.tid with
    | 0 -> (
      match Int.compare a.depth b.depth with
      | 0 -> (
        match String.compare a.name b.name with
        | 0 -> (
          match Int64.compare a.dur_ns b.dur_ns with
          | 0 -> (
            let attr (k1, v1) (k2, v2) =
              match String.compare k1 k2 with
              | 0 -> String.compare v1 v2
              | c -> c
            in
            match String.compare a.cat b.cat with
            | 0 -> List.compare attr a.attrs b.attrs
            | c -> c)
          | c -> c)
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let event_order (a : Registry.event_ev) (b : Registry.event_ev) =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> (
    match Int.compare a.tid b.tid with
    (* structural compare of the closed payload variant: totally orders
       every field, nan and None included — the tie-break that keeps
       multi-file merges independent of input order *)
    (* mlint: allow poly-compare *)
    | 0 -> compare a.payload b.payload
    | c -> c)
  | c -> c

let finish acc : Registry.snapshot =
  let spans = List.sort span_order acc.spans in
  let events = List.sort event_order acc.events in
  let sorted_bindings tbl =
    Hashtbl.fold (fun k v l -> (k, v) :: l) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    Registry.spans;
    events;
    counters = sorted_bindings acc.counters;
    gauges = sorted_bindings acc.gauges;
    hists =
      (* dsa: allow float-order — bindings are collected into a list and sorted by unique key before any float is combined *)
      Hashtbl.fold (fun k (b, c) l -> (k, b, c) :: l) acc.hists []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b);
  }

let load_into acc path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      try
        while true do
          let line = input_line ic in
          incr lineno;
          if String.trim line <> "" then
            try decode_line acc line
            with Parse_error msg ->
              raise
                (Parse_error (Printf.sprintf "%s:%d: %s" path !lineno msg))
        done
      with End_of_file -> ())

let empty_acc () =
  {
    spans = [];
    events = [];
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let load path =
  let acc = empty_acc () in
  load_into acc path;
  finish acc

let load_many paths =
  let acc = empty_acc () in
  List.iter (load_into acc) paths;
  finish acc
