(* Run-health reports: deterministic aggregation of a telemetry
   snapshot (live or replayed from a JSONL trace) into solver-health
   facts — convergence rates per solve, worst-converging grid cells,
   self/total span time, histogram quantiles, cache locality, step
   control, allocation totals. Everything is derived by sorting on
   stable keys, so the same snapshot always yields the same bytes. *)

type span_stat = {
  sname : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
  max_ns : int64;
}

type solve_rec = {
  solver : string;
  rung : string;
  cell : (float * float) option;
  iters : int;
  converged : bool;
  residual : float;
  rate : float;  (* decades of residual reduction per iteration *)
}

type solver_stat = {
  ssolver : string;
  solves : int;
  converged_n : int;
  iters_total : int;
  iters_max : int;
  mean_iters : float;
  mean_rate : float;
}

type step_stat = {
  accepted : int;
  rejected : int;
  dt_min : float;
  dt_max : float;
  lte_max : float;
}

type bracket_stat = {
  site : string;
  probes : int;
  hits : int;
  width0 : float;
  width : float;
}

type cache_stat = {
  kind : string;
  memory_hits : int;
  disk_hits : int;
  misses : int;
}

type gc_stat = {
  samples : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_gcs : int;
  major_gcs : int;
  heap_peak_words : int;
}

type quantile_stat = { hist : string; samples : int; p50 : float; p90 : float; p99 : float }

type t = {
  spans : span_stat list;
  solvers : solver_stat list;
  worst : solve_rec list;
  steps : step_stat option;
  brackets : bracket_stat list;
  cache : cache_stat list;
  gc : gc_stat option;
  quantiles : quantile_stat list;
  counters : (string * int) list;
  resilience : (string * int) list;
}

(* ---------------------------------------------------------------- *)
(* Span self time: subtract each span's direct children using the
   interval nesting per domain (spans arrive sorted by start time). *)

let span_stats (spans : Registry.span_ev list) =
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun (e : Registry.span_ev) -> e.tid) spans)
  in
  let selfed = ref [] in
  List.iter
    (fun tid ->
      let stack = ref [] in
      (* (end_ts, children duration accumulator) *)
      List.iter
        (fun (e : Registry.span_ev) ->
          if e.tid = tid then begin
            let e_end = Int64.add e.ts_ns e.dur_ns in
            let rec pop () =
              match !stack with
              | (fin, _) :: rest when Int64.compare fin e.ts_ns <= 0 ->
                stack := rest;
                pop ()
              | _ -> ()
            in
            pop ();
            (match !stack with
            | (_, kids) :: _ -> kids := Int64.add !kids e.dur_ns
            | [] -> ());
            let kids = ref 0L in
            stack := (e_end, kids) :: !stack;
            selfed := (e, kids) :: !selfed
          end)
        spans)
    tids;
  let by_name : (string, span_stat ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun ((e : Registry.span_ev), kids) ->
      let self = Int64.sub e.dur_ns !kids in
      let self = if Int64.compare self 0L < 0 then 0L else self in
      match Hashtbl.find_opt by_name e.name with
      | Some r ->
        r :=
          {
            !r with
            count = !r.count + 1;
            total_ns = Int64.add !r.total_ns e.dur_ns;
            self_ns = Int64.add !r.self_ns self;
            max_ns =
              (if Int64.compare e.dur_ns !r.max_ns > 0 then e.dur_ns
               else !r.max_ns);
          }
      | None ->
        Hashtbl.add by_name e.name
          (ref
             {
               sname = e.name;
               count = 1;
               total_ns = e.dur_ns;
               self_ns = self;
               max_ns = e.dur_ns;
             }))
    !selfed;
  Hashtbl.fold (fun _ r acc -> !r :: acc) by_name []
  |> List.sort (fun a b ->
         match Int64.compare b.total_ns a.total_ns with
         | 0 -> String.compare a.sname b.sname
         | c -> c)

(* ---------------------------------------------------------------- *)
(* Per-solve convergence: pair each Newton_done with the Newton_iter
   residual sequence that preceded it on the same domain with the same
   solve identity. Solves never nest within a domain, so a (tid, ctx)
   key is unambiguous. *)

let rate_of_residuals rs =
  let ok r = Float.is_finite r && r > 0.0 in
  match rs with
  | r0 :: _ :: _ ->
    let rl = List.nth rs (List.length rs - 1) in
    if ok r0 && ok rl then
      (Float.log10 r0 -. Float.log10 rl) /. float_of_int (List.length rs - 1)
    else Float.nan
  | _ -> Float.nan

let solves_of_events (events : Registry.event_ev list) =
  let pending : (int * Registry.solve_ctx, float list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let recs = ref [] in
  List.iter
    (fun (e : Registry.event_ev) ->
      match e.payload with
      | Newton_iter { ctx; residual; _ } -> (
        let key = (e.tid, ctx) in
        match Hashtbl.find_opt pending key with
        | Some l -> l := residual :: !l
        | None -> Hashtbl.add pending key (ref [ residual ]))
      | Newton_done { ctx; iters; converged; residual } ->
        let key = (e.tid, ctx) in
        let rs =
          match Hashtbl.find_opt pending key with
          | Some l ->
            Hashtbl.remove pending key;
            List.rev !l
          | None -> []
        in
        recs :=
          {
            solver = ctx.solver;
            rung = ctx.rung;
            cell = ctx.cell;
            iters;
            converged;
            residual;
            rate = rate_of_residuals rs;
          }
          :: !recs
      | _ -> ())
    events;
  List.rev !recs

let solver_stats recs =
  let tbl : (string, solver_stat ref) Hashtbl.t = Hashtbl.create 8 in
  let rates : (string, (float * int) ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun r ->
      (match Hashtbl.find_opt tbl r.solver with
      | Some s ->
        s :=
          {
            !s with
            solves = !s.solves + 1;
            converged_n = (!s.converged_n + if r.converged then 1 else 0);
            iters_total = !s.iters_total + r.iters;
            iters_max = max !s.iters_max r.iters;
          }
      | None ->
        Hashtbl.add tbl r.solver
          (ref
             {
               ssolver = r.solver;
               solves = 1;
               converged_n = (if r.converged then 1 else 0);
               iters_total = r.iters;
               iters_max = r.iters;
               mean_iters = 0.0;
               mean_rate = Float.nan;
             }));
      if Float.is_finite r.rate then
        match Hashtbl.find_opt rates r.solver with
        | Some acc ->
          let s, n = !acc in
          acc := (s +. r.rate, n + 1)
        | None -> Hashtbl.add rates r.solver (ref (r.rate, 1)))
    recs;
  Hashtbl.fold
    (fun k r acc ->
      let mean_rate =
        match Hashtbl.find_opt rates k with
        | Some { contents = s, n } -> s /. float_of_int n
        | None -> Float.nan
      in
      {
        !r with
        mean_iters = float_of_int !r.iters_total /. float_of_int !r.solves;
        mean_rate;
      }
      :: acc)
    tbl []
  |> List.sort (fun a b -> String.compare a.ssolver b.ssolver)

let cell_order a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some (x1, y1), Some (x2, y2) -> (
    match Float.compare x1 x2 with 0 -> Float.compare y1 y2 | c -> c)

let worst_cells ?(limit = 10) recs =
  let cells = List.filter (fun r -> r.cell <> None) recs in
  let ranked =
    List.sort
      (fun a b ->
        (* unconverged first, then by effort, then stable keys *)
        match Bool.compare a.converged b.converged with
        | 0 -> (
          match Int.compare b.iters a.iters with
          | 0 -> (
            match Float.compare b.residual a.residual with
            | 0 -> cell_order a.cell b.cell
            | c -> c)
          | c -> c)
        | c -> c)
      cells
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take limit ranked

(* ---------------------------------------------------------------- *)

let step_stats events =
  let acc = ref None in
  List.iter
    (fun (e : Registry.event_ev) ->
      match e.payload with
      | Tran_step { dt; accepted; lte; _ } ->
        let s =
          match !acc with
          | Some s -> s
          | None ->
            {
              accepted = 0;
              rejected = 0;
              dt_min = Float.infinity;
              dt_max = 0.0;
              lte_max = 0.0;
            }
        in
        acc :=
          Some
            {
              accepted = (s.accepted + if accepted then 1 else 0);
              rejected = (s.rejected + if accepted then 0 else 1);
              dt_min = Float.min s.dt_min dt;
              dt_max = Float.max s.dt_max dt;
              lte_max =
                (if Float.is_finite lte then Float.max s.lte_max lte
                 else s.lte_max);
            }
      | _ -> ())
    events;
  !acc

let bracket_stats events =
  let tbl : (string, bracket_stat ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Registry.event_ev) ->
      match e.payload with
      | Bracket { site; lo; hi; hit; _ } -> (
        let w = hi -. lo in
        match Hashtbl.find_opt tbl site with
        | Some r ->
          r :=
            {
              !r with
              probes = !r.probes + 1;
              hits = (!r.hits + if hit then 1 else 0);
              width = w;
            }
        | None ->
          Hashtbl.add tbl site
            (ref
               {
                 site;
                 probes = 1;
                 hits = (if hit then 1 else 0);
                 width0 = w;
                 width = w;
               }))
      | _ -> ())
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.site b.site)

let cache_stats events =
  let tbl : (string, cache_stat ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Registry.event_ev) ->
      match e.payload with
      | Cache_access { kind; outcome } -> (
        let bump (r : cache_stat) =
          match outcome with
          | "memory" -> { r with memory_hits = r.memory_hits + 1 }
          | "disk" -> { r with disk_hits = r.disk_hits + 1 }
          | _ -> { r with misses = r.misses + 1 }
        in
        match Hashtbl.find_opt tbl kind with
        | Some r -> r := bump !r
        | None ->
          Hashtbl.add tbl kind
            (ref (bump { kind; memory_hits = 0; disk_hits = 0; misses = 0 })))
      | _ -> ())
    events;
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> String.compare a.kind b.kind)

(* Gc counters are cumulative per domain: the allocation attributed to
   the trace is the last-minus-first delta on each domain, summed. *)
let gc_stats events =
  let tbl : (int, (Registry.event_payload * Registry.event_payload) ref) Hashtbl.t
      =
    Hashtbl.create 8
  in
  let samples = ref 0 in
  let heap_peak = ref 0 in
  List.iter
    (fun (e : Registry.event_ev) ->
      match e.payload with
      | Gc_sample { heap_words; _ } -> (
        incr samples;
        if heap_words > !heap_peak then heap_peak := heap_words;
        match Hashtbl.find_opt tbl e.tid with
        | Some r -> r := (fst !r, e.payload)
        | None -> Hashtbl.add tbl e.tid (ref (e.payload, e.payload)))
      | _ -> ())
    events;
  if !samples = 0 then None
  else begin
    let minor = ref 0.0
    and promoted = ref 0.0
    and major = ref 0.0
    and mgc = ref 0
    and jgc = ref 0 in
    (* sorted snapshot of the per-domain table: float accumulation
       order must not depend on Hashtbl iteration order *)
    Hashtbl.fold (fun tid r acc -> (tid, !r) :: acc) tbl []
    |> List.sort (fun (t1, _) (t2, _) -> Int.compare t1 t2)
    |> List.iter (fun (_, pair) ->
           match pair with
           | Registry.Gc_sample a, Registry.Gc_sample b ->
             minor := !minor +. (b.minor_words -. a.minor_words);
             promoted := !promoted +. (b.promoted_words -. a.promoted_words);
             major := !major +. (b.major_words -. a.major_words);
             mgc := !mgc + (b.minor_gcs - a.minor_gcs);
             jgc := !jgc + (b.major_gcs - a.major_gcs)
           | _ -> ());
    Some
      {
        samples = !samples;
        minor_words = !minor;
        promoted_words = !promoted;
        major_words = !major;
        minor_gcs = !mgc;
        major_gcs = !jgc;
        heap_peak_words = !heap_peak;
      }
  end

(* ---------------------------------------------------------------- *)

let of_snapshot (s : Registry.snapshot) =
  let recs = solves_of_events s.events in
  {
    spans = span_stats s.spans;
    solvers = solver_stats recs;
    worst = worst_cells recs;
    steps = step_stats s.events;
    brackets = bracket_stats s.events;
    cache = cache_stats s.events;
    gc = gc_stats s.events;
    quantiles =
      List.map
        (fun (k, bounds, counts) ->
          {
            hist = k;
            samples = Array.fold_left ( + ) 0 counts;
            p50 = Sink.quantile bounds counts 0.50;
            p90 = Sink.quantile bounds counts 0.90;
            p99 = Sink.quantile bounds counts 0.99;
          })
        s.hists;
    counters = s.counters;
    resilience =
      List.filter
        (fun (k, _) -> String.length k > 11 && String.sub k 0 11 = "resilience.")
        s.counters;
  }

(* ---------------------------------------------------------------- *)
(* JSON rendering (deterministic: fixed field order, fixed float
   format, nan as null). *)

let jf v =
  if Float.is_finite v then Printf.sprintf "%.9g" v
  else if Float.is_nan v then "null"
  else if v > 0.0 then "1e999"
  else "-1e999"

let jb v = if v then "true" else "false"
let ms ns = Int64.to_float ns /. 1e6

let to_json (r : t) =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let arr name items render =
    add "  \"%s\": [" name;
    List.iteri
      (fun i x ->
        add "%s\n    %s" (if i = 0 then "" else ",") (render x))
      items;
    add "%s]" (if items = [] then "" else "\n  ")
  in
  add "{\n";
  add "  \"version\": 1,\n";
  arr "spans" r.spans (fun s ->
      Printf.sprintf
        {|{"name":"%s","count":%d,"total_ms":%s,"self_ms":%s,"max_ms":%s}|}
        (Sink.escape s.sname) s.count (jf (ms s.total_ns)) (jf (ms s.self_ns))
        (jf (ms s.max_ns)));
  add ",\n";
  arr "solvers" r.solvers (fun s ->
      Printf.sprintf
        {|{"solver":"%s","solves":%d,"converged":%d,"iters_total":%d,"iters_max":%d,"mean_iters":%s,"mean_rate_decades_per_iter":%s}|}
        (Sink.escape s.ssolver) s.solves s.converged_n s.iters_total
        s.iters_max (jf s.mean_iters) (jf s.mean_rate));
  add ",\n";
  arr "worst_cells" r.worst (fun w ->
      let phi, a = Option.value ~default:(Float.nan, Float.nan) w.cell in
      Printf.sprintf
        {|{"solver":"%s","rung":"%s","phi":%s,"a":%s,"iters":%d,"converged":%s,"residual":%s,"rate":%s}|}
        (Sink.escape w.solver) (Sink.escape w.rung) (jf phi) (jf a) w.iters
        (jb w.converged) (jf w.residual) (jf w.rate));
  add ",\n";
  (match r.steps with
  | None -> add "  \"transient\": null"
  | Some s ->
    add
      {|  "transient": {"accepted":%d,"rejected":%d,"dt_min":%s,"dt_max":%s,"lte_max":%s}|}
      s.accepted s.rejected (jf s.dt_min) (jf s.dt_max) (jf s.lte_max));
  add ",\n";
  arr "brackets" r.brackets (fun bk ->
      Printf.sprintf
        {|{"site":"%s","probes":%d,"hits":%d,"width0":%s,"width":%s}|}
        (Sink.escape bk.site) bk.probes bk.hits (jf bk.width0) (jf bk.width));
  add ",\n";
  arr "cache" r.cache (fun c ->
      Printf.sprintf
        {|{"kind":"%s","memory_hits":%d,"disk_hits":%d,"misses":%d}|}
        (Sink.escape c.kind) c.memory_hits c.disk_hits c.misses);
  add ",\n";
  (match r.gc with
  | None -> add "  \"gc\": null"
  | Some g ->
    add
      {|  "gc": {"samples":%d,"minor_words":%s,"promoted_words":%s,"major_words":%s,"minor_gcs":%d,"major_gcs":%d,"heap_peak_words":%d}|}
      g.samples (jf g.minor_words) (jf g.promoted_words) (jf g.major_words)
      g.minor_gcs g.major_gcs g.heap_peak_words);
  add ",\n";
  arr "quantiles" r.quantiles (fun q ->
      Printf.sprintf
        {|{"hist":"%s","samples":%d,"p50":%s,"p90":%s,"p99":%s}|}
        (Sink.escape q.hist) q.samples (jf q.p50) (jf q.p90) (jf q.p99));
  add ",\n";
  arr "resilience" r.resilience (fun (k, v) ->
      Printf.sprintf {|{"name":"%s","value":%d}|} (Sink.escape k) v);
  add ",\n";
  arr "counters" r.counters (fun (k, v) ->
      Printf.sprintf {|{"name":"%s","value":%d}|} (Sink.escape k) v);
  add "\n}\n";
  Buffer.contents b

(* ---------------------------------------------------------------- *)
(* Human table *)

let pp ppf (r : t) =
  let open Format in
  fprintf ppf "@[<v>== run health@,";
  if r.spans <> [] then begin
    fprintf ppf "-- spans (self/total)@,";
    fprintf ppf "  %-36s %8s %12s %12s %12s@," "name" "count" "total ms"
      "self ms" "max ms";
    List.iter
      (fun s ->
        fprintf ppf "  %-36s %8d %12.3f %12.3f %12.3f@," s.sname s.count
          (ms s.total_ns) (ms s.self_ns) (ms s.max_ns))
      r.spans
  end;
  if r.solvers <> [] then begin
    fprintf ppf "-- solvers (from introspection events)@,";
    fprintf ppf "  %-24s %7s %9s %10s %9s %10s@," "solver" "solves" "converged"
      "mean iters" "max iters" "rate dec/it";
    List.iter
      (fun s ->
        fprintf ppf "  %-24s %7d %9d %10.2f %9d %10.3f@," s.ssolver s.solves
          s.converged_n s.mean_iters s.iters_max s.mean_rate)
      r.solvers
  end;
  if r.worst <> [] then begin
    fprintf ppf "-- worst-converging grid cells@,";
    fprintf ppf "  %-14s %-12s %-12s %6s %5s %12s %9s@," "solver" "phi" "A"
      "iters" "conv" "residual" "rate";
    List.iter
      (fun w ->
        let phi, a = Option.value ~default:(Float.nan, Float.nan) w.cell in
        fprintf ppf "  %-14s %-12.6g %-12.6g %6d %5s %12.3e %9.3f@," w.solver
          phi a w.iters
          (if w.converged then "yes" else "NO")
          w.residual w.rate)
      r.worst
  end;
  (match r.steps with
  | None -> ()
  | Some s ->
    fprintf ppf "-- transient step control@,";
    fprintf ppf
      "  accepted %d  rejected %d  dt in [%.3e, %.3e]  max LTE %.3e@,"
      s.accepted s.rejected s.dt_min s.dt_max s.lte_max);
  if r.brackets <> [] then begin
    fprintf ppf "-- bisection brackets@,";
    List.iter
      (fun bk ->
        fprintf ppf "  %-28s probes %5d  hits %5d  width %.3e -> %.3e@,"
          bk.site bk.probes bk.hits bk.width0 bk.width)
      r.brackets
  end;
  if r.cache <> [] then begin
    fprintf ppf "-- cache locality@,";
    List.iter
      (fun c ->
        let total = c.memory_hits + c.disk_hits + c.misses in
        let hit_rate =
          if total = 0 then 0.0
          else
            float_of_int (c.memory_hits + c.disk_hits) /. float_of_int total
        in
        fprintf ppf
          "  %-28s memory %6d  disk %6d  miss %6d  hit-rate %5.1f%%@," c.kind
          c.memory_hits c.disk_hits c.misses (100.0 *. hit_rate))
      r.cache
  end;
  (match r.gc with
  | None -> ()
  | Some g ->
    fprintf ppf "-- allocation (Gc deltas over %d samples)@," g.samples;
    fprintf ppf
      "  minor %.3e w  promoted %.3e w  major %.3e w  gcs %d/%d  heap peak %d w@,"
      g.minor_words g.promoted_words g.major_words g.minor_gcs g.major_gcs
      g.heap_peak_words);
  if r.quantiles <> [] then begin
    fprintf ppf "-- histogram quantiles@,";
    List.iter
      (fun q ->
        fprintf ppf "  %-36s n %8d  p50 <= %-10g p90 <= %-10g p99 <= %-10g@,"
          q.hist q.samples q.p50 q.p90 q.p99)
      r.quantiles
  end;
  if r.resilience <> [] then begin
    fprintf ppf "-- resilience@,";
    List.iter
      (fun (k, v) -> fprintf ppf "  %-44s %14d@," k v)
      r.resilience
  end;
  fprintf ppf "@]"

(* ---------------------------------------------------------------- *)
(* Trace-vs-trace diff *)

let pct a b =
  if a = 0.0 then if b = 0.0 then 0.0 else Float.infinity
  else 100.0 *. (b -. a) /. Float.abs a

let pp_compare ppf ~label_a ~label_b (a : t) (b : t) =
  let open Format in
  fprintf ppf "@[<v>== trace compare: A=%s  B=%s@," label_a label_b;
  let union keys_a keys_b =
    List.sort_uniq String.compare (keys_a @ keys_b)
  in
  let counters =
    union (List.map fst a.counters) (List.map fst b.counters)
  in
  if counters <> [] then begin
    fprintf ppf "-- counters@,";
    fprintf ppf "  %-44s %14s %14s %9s@," "name" "A" "B" "delta";
    List.iter
      (fun k ->
        let va = Option.value ~default:0 (List.assoc_opt k a.counters) in
        let vb = Option.value ~default:0 (List.assoc_opt k b.counters) in
        if va <> 0 || vb <> 0 then
          fprintf ppf "  %-44s %14d %14d %+8.1f%%@," k va vb
            (pct (float_of_int va) (float_of_int vb)))
      counters
  end;
  let span_names =
    union
      (List.map (fun s -> s.sname) a.spans)
      (List.map (fun s -> s.sname) b.spans)
  in
  if span_names <> [] then begin
    fprintf ppf "-- span totals (ms)@,";
    fprintf ppf "  %-36s %12s %12s %9s@," "name" "A" "B" "delta";
    List.iter
      (fun n ->
        let find l = List.find_opt (fun s -> s.sname = n) l in
        let ta =
          match find a.spans with Some s -> ms s.total_ns | None -> 0.0
        in
        let tb =
          match find b.spans with Some s -> ms s.total_ns | None -> 0.0
        in
        fprintf ppf "  %-36s %12.3f %12.3f %+8.1f%%@," n ta tb (pct ta tb))
      span_names
  end;
  let hist_names =
    union
      (List.map (fun q -> q.hist) a.quantiles)
      (List.map (fun q -> q.hist) b.quantiles)
  in
  if hist_names <> [] then begin
    fprintf ppf "-- quantiles (p50 / p90 / p99)@,";
    List.iter
      (fun n ->
        let find l = List.find_opt (fun q -> q.hist = n) l in
        let show = function
          | Some q -> Printf.sprintf "%g/%g/%g" q.p50 q.p90 q.p99
          | None -> "-"
        in
        fprintf ppf "  %-36s A %-28s B %-28s@," n
          (show (find a.quantiles))
          (show (find b.quantiles)))
      hist_names
  end;
  let solver_names =
    union
      (List.map (fun s -> s.ssolver) a.solvers)
      (List.map (fun s -> s.ssolver) b.solvers)
  in
  if solver_names <> [] then begin
    fprintf ppf "-- solver health (mean iters | rate dec/it)@,";
    List.iter
      (fun n ->
        let find l = List.find_opt (fun s -> s.ssolver = n) l in
        let show = function
          | Some s -> Printf.sprintf "%.2f | %.3f" s.mean_iters s.mean_rate
          | None -> "-"
        in
        fprintf ppf "  %-24s A %-20s B %-20s@," n
          (show (find a.solvers))
          (show (find b.solvers)))
      solver_names
  end;
  fprintf ppf "@]"
