(** Run-health reports: deterministic aggregation of a telemetry
    snapshot into solver-health facts.

    Consumes a {!Registry.snapshot} — live, or replayed from a JSONL
    trace via {!Trace_read} — and derives:
    - per-solver convergence statistics (solve counts, mean/max
      iterations, mean residual-reduction rate in decades per
      iteration) reconstructed from [Newton_iter]/[Newton_done] events;
    - the worst-converging (phi, A) grid cells, ranked (unconverged
      first, then by iteration count and final residual);
    - self/total span time per span name (self = total minus direct
      children, from interval nesting per domain);
    - transient step-control, bisection-bracket, cache-locality and
      allocation summaries from their event kinds;
    - histogram p50/p90/p99 quantiles and the resilience counters.

    Aggregation is pure and deterministic: the same snapshot always
    renders to the same bytes ([to_json] uses fixed field order and
    float formats), which is what makes golden tests and trace-vs-trace
    diffs meaningful. *)

type span_stat = {
  sname : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
  max_ns : int64;
}

type solve_rec = {
  solver : string;
  rung : string;
  cell : (float * float) option;
  iters : int;
  converged : bool;
  residual : float;
  rate : float;  (** decades of residual reduction per iteration *)
}

type solver_stat = {
  ssolver : string;
  solves : int;
  converged_n : int;
  iters_total : int;
  iters_max : int;
  mean_iters : float;
  mean_rate : float;
}

type step_stat = {
  accepted : int;
  rejected : int;
  dt_min : float;
  dt_max : float;
  lte_max : float;
}

type bracket_stat = {
  site : string;
  probes : int;
  hits : int;
  width0 : float;  (** bracket width at the first probe *)
  width : float;  (** bracket width at the last probe *)
}

type cache_stat = {
  kind : string;
  memory_hits : int;
  disk_hits : int;
  misses : int;
}

type gc_stat = {
  samples : int;
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_gcs : int;
  major_gcs : int;
  heap_peak_words : int;
}

type quantile_stat = {
  hist : string;
  samples : int;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  spans : span_stat list;  (** by total time desc, then name *)
  solvers : solver_stat list;  (** by solver name *)
  worst : solve_rec list;  (** worst-converging cell solves, ranked *)
  steps : step_stat option;
  brackets : bracket_stat list;  (** by site *)
  cache : cache_stat list;  (** by kind *)
  gc : gc_stat option;
  quantiles : quantile_stat list;  (** by histogram name *)
  counters : (string * int) list;
  resilience : (string * int) list;  (** [resilience.*] counters *)
}

val of_snapshot : Registry.snapshot -> t

val to_json : t -> string
(** Render as a deterministic JSON document (fixed field order, fixed
    float format, nan as null, trailing newline). *)

val pp : Format.formatter -> t -> unit
(** Human-readable run-health table; empty sections are omitted. *)

val pp_compare :
  Format.formatter -> label_a:string -> label_b:string -> t -> t -> unit
(** Side-by-side diff of two reports (counters, span totals,
    quantiles, solver health) with relative deltas. *)
