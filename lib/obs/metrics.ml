let incr ?(by = 1) name =
  if Atomic.get Registry.enabled then
    Registry.counter_add (Registry.my_buf ()) name by

let set_gauge name v =
  if Atomic.get Registry.enabled then
    Registry.gauge_set (Registry.my_buf ()) name v

let register_histogram = Registry.register_histogram

let observe name v =
  if Atomic.get Registry.enabled then
    Registry.observe (Registry.my_buf ()) name v

let counter_value = Registry.counter_value
