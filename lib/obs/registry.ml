(* Per-domain event buffers and the global merge.

   Hot-path writes (span completion, counter bumps, histogram samples)
   go to a buffer owned by the writing domain, guarded by a mutex that
   is uncontended in steady state — the only cross-domain access is the
   flush/snapshot path, which locks each buffer briefly while draining.
   This keeps instrumentation cheap under the worker pool without
   per-event atomics, and merging in [snapshot] restores a single
   coherent view (spans sorted by timestamp, counters summed, gauges
   resolved last-write-wins by timestamp, histogram counts added). *)

let enabled = Atomic.make false

(* Introspection events are a second, independently gated stream: they
   are much higher-volume than spans (per Newton iteration), so a run
   can keep span telemetry on while leaving events off. Same contract:
   one atomic load when off, observation only. *)
let events_enabled = Atomic.make false

type span_ev = {
  name : string;
  cat : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  depth : int;
  attrs : (string * string) list;
}

(* Solver identity attached to convergence events: which engine ran the
   solve, which recovery rung it ran on (e.g. "gmin=1e-4"), and — for
   describing-function solves — which (phi, A) grid cell it refined. *)
type solve_ctx = {
  solver : string;
  rung : string;
  cell : (float * float) option;
}

type event_payload =
  | Newton_iter of {
      ctx : solve_ctx;
      iter : int;
      residual : float;
      step : float;
      damping : float;
    }
  | Newton_done of {
      ctx : solve_ctx;
      iters : int;
      converged : bool;
      residual : float;
    }
  | Tran_step of { t : float; dt : float; accepted : bool; lte : float }
  | Bracket of { site : string; lo : float; hi : float; probe : float; hit : bool }
  | Cache_access of { kind : string; outcome : string }
  | Pool_sample of { domains : int; tasks : int; busy_ns : int64 }
  | Gc_sample of {
      where : string;
      minor_words : float;
      promoted_words : float;
      major_words : float;
      minor_gcs : int;
      major_gcs : int;
      heap_words : int;
    }

type event_ev = { ts_ns : int64; tid : int; payload : event_payload }

type dbuf = {
  dom : int;
  mu : Mutex.t;
  mutable spans : span_ev list;  (* completion order, reversed *)
  mutable n_spans : int;
  mutable events : event_ev list;  (* emission order, reversed *)
  mutable n_events : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, (int64 * float) ref) Hashtbl.t;
  hists : (string, int array) Hashtbl.t;
  mutable depth : int;  (* live nesting depth; owning domain only *)
}

(* Backstop against unbounded growth on very long traced runs; overflow
   is made visible as the [obs.spans_dropped] counter. *)
let span_cap = 500_000
let event_cap = 500_000

let all_bufs : dbuf list ref = ref []
let all_mu = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          mu = Mutex.create ();
          spans = [];
          n_spans = 0;
          events = [];
          n_events = 0;
          counters = Hashtbl.create 32;
          gauges = Hashtbl.create 8;
          hists = Hashtbl.create 8;
          depth = 0;
        }
      in
      Mutex.lock all_mu;
      all_bufs := b :: !all_bufs;
      Mutex.unlock all_mu;
      b)

let my_buf () = Domain.DLS.get key

(* Depth bookkeeping is owner-domain-only, so no lock is needed. *)
let live_depth b = b.depth
let set_live_depth b d = b.depth <- d
let buf_dom b = b.dom

let counter_add_locked b name by =
  match Hashtbl.find_opt b.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add b.counters name (ref by)

let add_span b ev =
  Mutex.lock b.mu;
  if b.n_spans < span_cap then begin
    b.spans <- ev :: b.spans;
    b.n_spans <- b.n_spans + 1
  end
  else counter_add_locked b "obs.spans_dropped" 1;
  Mutex.unlock b.mu

let add_event b ev =
  Mutex.lock b.mu;
  if b.n_events < event_cap then begin
    b.events <- ev :: b.events;
    b.n_events <- b.n_events + 1
  end
  else counter_add_locked b "obs.events_dropped" 1;
  Mutex.unlock b.mu

let counter_add b name by =
  Mutex.lock b.mu;
  counter_add_locked b name by;
  Mutex.unlock b.mu

let gauge_set b name v =
  let ts = Clock.since_start_ns () in
  Mutex.lock b.mu;
  (match Hashtbl.find_opt b.gauges name with
  | Some r -> r := (ts, v)
  | None -> Hashtbl.add b.gauges name (ref (ts, v)));
  Mutex.unlock b.mu

(* ------------------------------------------------------------------ *)
(* Histogram bucket definitions: name -> strictly ascending upper
   bounds, shared by every domain so counts merge bucket-for-bucket. *)

let hist_defs : (string * float array) list Atomic.t = Atomic.make []

let hist_bounds name = List.assoc_opt name (Atomic.get hist_defs)

let register_histogram ~name ~buckets =
  if Array.length buckets = 0 then
    invalid_arg "Obs.Metrics.register_histogram: empty bucket list";
  Array.iteri
    (fun i b ->
      if (not (Float.is_finite b)) || (i > 0 && b <= buckets.(i - 1)) then
        invalid_arg
          "Obs.Metrics.register_histogram: bounds must be finite and strictly \
           ascending")
    buckets;
  let rec add () =
    let cur = Atomic.get hist_defs in
    if List.mem_assoc name cur then ()
    else if
      not (Atomic.compare_and_set hist_defs cur ((name, Array.copy buckets) :: cur))
    then add ()
  in
  add ()

(* First bucket whose upper bound admits [v] ([v <= bounds.(i)]); the
   slot past the last bound collects overflow. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let i = ref 0 in
  while !i < n && v > bounds.(!i) do
    incr i
  done;
  !i

let observe b name v =
  match hist_bounds name with
  | None -> () (* unregistered histogram: sample dropped by contract *)
  | Some bounds ->
    Mutex.lock b.mu;
    let counts =
      match Hashtbl.find_opt b.hists name with
      | Some c -> c
      | None ->
        let c = Array.make (Array.length bounds + 1) 0 in
        Hashtbl.add b.hists name c;
        c
    in
    let i = bucket_index bounds v in
    counts.(i) <- counts.(i) + 1;
    Mutex.unlock b.mu

(* ------------------------------------------------------------------ *)
(* Merged view *)

type snapshot = {
  spans : span_ev list;
  events : event_ev list;
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * float array * int array) list;
}

let bufs () =
  Mutex.lock all_mu;
  let bs = !all_bufs in
  Mutex.unlock all_mu;
  bs

let snapshot () =
  let spans = ref [] in
  let events = ref [] in
  let ctr : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let gg : (string, int64 * float) Hashtbl.t = Hashtbl.create 16 in
  let hh : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun b ->
      Mutex.lock b.mu;
      spans := List.rev_append b.spans !spans;
      events := List.rev_append b.events !events;
      Hashtbl.iter
        (fun k r ->
          let prev = Option.value (Hashtbl.find_opt ctr k) ~default:0 in
          Hashtbl.replace ctr k (prev + !r))
        b.counters;
      Hashtbl.iter
        (fun k r ->
          let ts, _ = !r in
          match Hashtbl.find_opt gg k with
          | Some (ts', _) when Int64.compare ts' ts >= 0 -> ()
          | _ -> Hashtbl.replace gg k !r)
        b.gauges;
      Hashtbl.iter
        (fun k c ->
          match Hashtbl.find_opt hh k with
          | Some acc -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) c
          | None -> Hashtbl.replace hh k (Array.copy c))
        b.hists;
      Mutex.unlock b.mu)
    (bufs ());
  let spans =
    List.sort
      (fun (a : span_ev) (b : span_ev) ->
        match Int64.compare a.ts_ns b.ts_ns with
        | 0 -> Int.compare a.tid b.tid
        | c -> c)
      !spans
  in
  let events =
    List.sort
      (fun (a : event_ev) (b : event_ev) ->
        match Int64.compare a.ts_ns b.ts_ns with
        | 0 -> Int.compare a.tid b.tid
        | c -> c)
      !events
  in
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    spans;
    events;
    counters = sorted ctr;
    gauges = List.map (fun (k, (_, v)) -> (k, v)) (sorted gg);
    hists =
      List.filter_map
        (fun (k, counts) ->
          match hist_bounds k with
          | Some bounds -> Some (k, bounds, counts)
          | None -> None)
        (sorted hh);
  }

let counter_value name =
  List.fold_left
    (fun acc b ->
      Mutex.lock b.mu;
      let v =
        match Hashtbl.find_opt b.counters name with Some r -> !r | None -> 0
      in
      Mutex.unlock b.mu;
      acc + v)
    0 (bufs ())

let reset () =
  List.iter
    (fun b ->
      Mutex.lock b.mu;
      b.spans <- [];
      b.n_spans <- 0;
      b.events <- [];
      b.n_events <- 0;
      Hashtbl.reset b.counters;
      Hashtbl.reset b.gauges;
      Hashtbl.reset b.hists;
      Mutex.unlock b.mu)
    (bufs ())
