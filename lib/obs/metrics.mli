(** Counters, gauges and fixed-bucket histograms with stable dotted
    names.

    Naming convention: [layer.component.quantity], e.g.
    [spice.newton.iters], [shil.grid.f_evals], [numerics.pool.tasks].
    Names are the schema — dashboards, the [oshil stats] summary and
    the bench JSON breakdown key on them — so treat renames as breaking
    changes and document them in the README metric table.

    All entry points are no-ops (one atomic load) while telemetry is
    disabled; [register_histogram] is the exception and always runs so
    modules can declare their buckets at initialisation time. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter. Negative [by] is permitted for
    symmetry but counters are conventionally monotonic. *)

val set_gauge : string -> float -> unit
(** Record the current value of a quantity; merged last-write-wins
    (by monotonic timestamp) across domains. *)

val register_histogram : name:string -> buckets:float array -> unit
(** Declare a histogram's bucket upper bounds (strictly ascending).
    Idempotent — the first registration of a name wins — so modules can
    register at init without coordination. *)

val observe : string -> float -> unit
(** Sample into a registered histogram; a value [v] lands in the first
    bucket with [v <= bound], above the last bound in the overflow
    slot. Samples for unregistered names are dropped. *)

val counter_value : string -> int
(** Merged current value of a counter across all domains; 0 if the
    counter was never incremented. Useful for before/after deltas when
    embedding metric snapshots into bench records. *)
