(** Structured diagnostics for the static verification layer.

    Every pre-flight analyzer (netlist, SHIL config, scenario files)
    reports findings as values of {!t}; severities split hard errors —
    conditions under which the downstream numerical analysis is known to
    be ill-posed — from warnings and purely informational notes. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable kebab-case identifier, e.g. ["vsource-loop"] *)
  loc : string;  (** device, node, file:line or parameter the finding anchors to *)
  msg : string;
}

val make : severity -> code:string -> loc:string -> string -> t
val error : code:string -> loc:string -> string -> t
val warning : code:string -> loc:string -> string -> t
val info : code:string -> loc:string -> string -> t

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

val is_error : t -> bool
val errors : t list -> t list
val count_severity : severity -> t list -> int

val worst : t list -> severity option
(** Most severe level present, [None] for an empty report. *)

val pp : Format.formatter -> t -> unit
(** [error[vsource-loop] V2: ...] single-line rendering. *)

val pp_report : Format.formatter -> t list -> unit

val json_escape : string -> string
(** Escape a string for inclusion in a JSON string literal. *)

val to_json : t -> string
val list_to_json : t list -> string
(** Machine-readable rendering for [oshil lint --json]. *)

exception Failed of t list
(** Raised by {!gate} (and the [Spice]/[Shil] entry points) when a
    pre-flight check reports errors; carries the error diagnostics. *)

type gate_mode = [ `Enforce | `Warn | `Off ]

val gate : ?mode:gate_mode -> emit:(t -> unit) -> t list -> unit
(** [`Enforce] (default) sends warnings/infos to [emit] and raises
    {!Failed} when any error is present; [`Warn] sends everything to
    [emit] and never raises; [`Off] discards the report. *)
