(* Pre-flight validation of a SHIL describing-function study: tank
   well-posedness, injection parameters, grid geometry and cheap probing
   of the nonlinearity. Works on raw parameters so that a configuration
   can be rejected with a located diagnostic before any constructor
   (e.g. Tank.make) gets a chance to raise. *)

module D = Diagnostic

type config = {
  r : float;
  l : float;
  c : float;
  n : int;
  vi : float;
  a_range : (float * float) option;
  n_phi : int option;
  n_amp : int option;
  points : int option;
}

let config ?a_range ?n_phi ?n_amp ?points ~r ~l ~c ~n ~vi () =
  { r; l; c; n; vi; a_range; n_phi; n_amp; points }

let check_tank ~r ~l ~c =
  let nonpos what v =
    if not (Float.is_finite v) then
      Some
        (D.error ~code:"tank-nonpositive" ~loc:what
           (Printf.sprintf "tank %s is not finite (%g)" what v))
    else if v <= 0.0 then
      Some
        (D.error ~code:"tank-nonpositive" ~loc:what
           (Printf.sprintf
              "tank %s must be positive (got %g); H(jw) = R/(1 + jQ(w/wc - \
               wc/w)) is only a resonator for R, L, C > 0"
              what v))
    else None
  in
  let hard =
    List.filter_map Fun.id
      [ nonpos "R" r; nonpos "L" l; nonpos "C" c ]
  in
  if hard <> [] then hard
  else begin
    let q = r *. sqrt (c /. l) in
    if q < 2.0 then
      [ D.warning ~code:"tank-low-q" ~loc:"Q"
          (Printf.sprintf
             "tank Q = %.3g is low; the describing-function filter \
              hypothesis (harmonics rejected by the tank) degrades below Q \
              of a few"
             q) ]
    else []
  end

let check_injection ~n ~vi =
  let order =
    if n < 1 then
      [ D.error ~code:"order" ~loc:"n"
          (Printf.sprintf
             "sub-harmonic order n must be >= 1 (got %d); n = 1 is \
              fundamental injection locking"
             n) ]
    else if n > 64 then
      [ D.warning ~code:"order" ~loc:"n"
          (Printf.sprintf
             "sub-harmonic order n = %d is unusually high; the n-th mixing \
              product is tiny and the lock range will be negligible"
             n) ]
    else []
  in
  let inj =
    if not (Float.is_finite vi) then
      [ D.error ~code:"inj-negative" ~loc:"vi"
          (Printf.sprintf "injection magnitude is not finite (%g)" vi) ]
    else if vi < 0.0 then
      [ D.error ~code:"inj-negative" ~loc:"vi"
          (Printf.sprintf
             "injection magnitude |Vi| must be >= 0 (got %g); phase is \
              carried separately"
             vi) ]
    else if vi = 0.0 then
      [ D.warning ~code:"inj-zero" ~loc:"vi"
          "injection magnitude is zero; the analysis degenerates to the \
           free-running oscillator" ]
    else []
  in
  order @ inj

let check_grid ?a_range ?n_phi ?n_amp ?points () =
  let range =
    match a_range with
    | None -> []
    | Some (lo, hi) ->
      if not (Float.is_finite lo && Float.is_finite hi) then
        [ D.error ~code:"grid-range" ~loc:"a_range"
            (Printf.sprintf "amplitude range (%g, %g) is not finite" lo hi) ]
      else if lo <= 0.0 then
        [ D.error ~code:"grid-range" ~loc:"a_range"
            (Printf.sprintf
               "amplitude range lower bound must be positive (got %g); A = \
                0 is a removable singularity of T_f"
               lo) ]
      else if hi <= lo then
        [ D.error ~code:"grid-range" ~loc:"a_range"
            (Printf.sprintf "amplitude range (%g, %g) is empty" lo hi) ]
      else []
  in
  let count what = function
    | None -> []
    | Some k ->
      if k < 2 then
        [ D.error ~code:"grid-size" ~loc:what
            (Printf.sprintf
               "%s must be at least 2 to contour the field (got %d)" what k) ]
      else []
  in
  let quad =
    match points with
    | None -> []
    | Some p ->
      if p < 2 then
        [ D.error ~code:"grid-size" ~loc:"points"
            (Printf.sprintf "quadrature points must be >= 2 (got %d)" p) ]
      else if p < 32 then
        [ D.warning ~code:"grid-coarse" ~loc:"points"
            (Printf.sprintf
               "%d quadrature points per I_1 sample is coarse; harmonics \
                of order ~n alias into the fundamental below ~32"
               p) ]
      else []
  in
  range @ count "n_phi" n_phi @ count "n_amp" n_amp @ quad

(* Cheap pointwise probes of the memoryless nonlinearity i = f(v). Probes
   never raise: a NaN/inf escaping f is precisely what they report. *)
let check_nonlinearity ?(v_scale = 1.0) f =
  let n_probe = 33 in
  let vs =
    Array.init n_probe (fun k ->
        v_scale *. ((2.0 *. float_of_int k /. float_of_int (n_probe - 1)) -. 1.0))
  in
  let is = Array.map (fun v -> try f v with _ -> Float.nan) vs in
  let bad =
    Array.exists (fun i -> not (Float.is_finite i)) is
  in
  if bad then
    [ D.error ~code:"nl-nonfinite" ~loc:"f(v)"
        (Printf.sprintf
           "nonlinearity returned a non-finite current on [-%g, %g]; the \
            describing-function quadrature cannot integrate it"
           v_scale v_scale) ]
  else begin
    let i_max = Array.fold_left (fun m i -> Float.max m (Float.abs i)) 0.0 is in
    let mid = n_probe / 2 in
    let offset =
      if Float.abs is.(mid) > 1e-9 +. (1e-3 *. i_max) then
        [ D.warning ~code:"nl-offset" ~loc:"f(0)"
            (Printf.sprintf
               "f(0) = %g is not (close to) zero; the incremental \
                nonlinearity seen by the tank should pass through the \
                origin — shift the bias out first"
               is.(mid)) ]
      else []
    in
    let h = v_scale *. 1e-4 in
    let slope0 = (f h -. f (-.h)) /. (2.0 *. h) in
    let passive =
      if Float.is_finite slope0 && slope0 >= 0.0 && i_max > 0.0 then
        [ D.warning ~code:"nl-passive" ~loc:"f'(0)"
            (Printf.sprintf
               "small-signal conductance f'(0) = %g is non-negative: no \
                negative resistance at the origin, the oscillator will not \
                start"
               slope0) ]
      else []
    in
    let asym =
      let dev = ref 0.0 in
      Array.iteri
        (fun k v -> dev := Float.max !dev (Float.abs (is.(k) +. f (-.v))))
        vs;
      if i_max > 0.0 && !dev > 0.01 *. i_max then
        [ D.info ~code:"nl-asymmetric" ~loc:"f(v)"
            (Printf.sprintf
               "f is not odd-symmetric (max |f(v) + f(-v)| = %.2g of %.2g \
                peak); even harmonics will shift the operating point (the \
                paper's SS IV-B treatment applies)"
               !dev i_max) ]
      else []
    in
    let nonmono =
      let flips = ref 0 in
      for k = 1 to n_probe - 2 do
        let d1 = is.(k) -. is.(k - 1) and d2 = is.(k + 1) -. is.(k) in
        if d1 *. d2 < 0.0 then incr flips
      done;
      if !flips > 0 then
        [ D.info ~code:"nl-nonmonotone" ~loc:"f(v)"
            (Printf.sprintf
               "f changes slope direction %d time(s) on [-%g, %g] (an \
                N-shaped i-v such as a tunnel diode); multiple lock \
                amplitudes are possible"
               !flips v_scale v_scale) ]
      else []
    in
    offset @ passive @ asym @ nonmono
  end

let check ?nl ?v_scale cfg =
  check_tank ~r:cfg.r ~l:cfg.l ~c:cfg.c
  @ check_injection ~n:cfg.n ~vi:cfg.vi
  @ check_grid ?a_range:cfg.a_range ?n_phi:cfg.n_phi ?n_amp:cfg.n_amp
      ?points:cfg.points ()
  @ (match nl with None -> [] | Some f -> check_nonlinearity ?v_scale f)
