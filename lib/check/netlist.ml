(* Circuit-level pre-flight checks on an engine-independent device view.

   The analyses are purely structural: connectivity (union-find),
   source/inductor loop detection (incremental union-find) and a
   zero-pattern structural-rank test of the stamped MNA matrix (maximum
   bipartite matching). No numerical solve is involved, so a report is
   cheap enough to run in front of every analysis. *)

type kind =
  | Resistor of float
  | Capacitor of float
  | Inductor of float
  | Vsource
  | Isource
  | Nonlinear of {
      conduction : (string * string) list;
      control : (string * string) list;
    }

type device = { name : string; kind : kind; nodes : string list }

let is_ground n =
  match String.lowercase_ascii n with "0" | "gnd" -> true | _ -> false

let canon n = if is_ground n then "0" else n

let resistor ~name ~n1 ~n2 r = { name; kind = Resistor r; nodes = [ n1; n2 ] }
let capacitor ~name ~n1 ~n2 c = { name; kind = Capacitor c; nodes = [ n1; n2 ] }
let inductor ~name ~n1 ~n2 l = { name; kind = Inductor l; nodes = [ n1; n2 ] }
let vsource ~name ~np ~nn = { name; kind = Vsource; nodes = [ np; nn ] }
let isource ~name ~np ~nn = { name; kind = Isource; nodes = [ np; nn ] }

let two_terminal ~name ~np ~nn =
  { name; kind = Nonlinear { conduction = [ (np, nn) ]; control = [] };
    nodes = [ np; nn ] }

let multi_terminal ~name ~nodes ~conduction ~control =
  { name; kind = Nonlinear { conduction; control }; nodes }

(* DC conduction edges: pairs of terminals joined by a path that can carry
   direct current (used for the "no DC path to ground" analysis). *)
let conduction_edges d =
  match d.kind with
  | Resistor _ | Inductor _ | Vsource -> begin
    match d.nodes with a :: b :: _ -> [ (a, b) ] | _ -> []
  end
  | Capacitor _ | Isource -> []
  | Nonlinear { conduction; _ } -> conduction

(* ------------------------------------------------------------------ *)
(* Union-find *)

module Uf = struct
  type t = { parent : int array; rank : int array }

  let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

  let rec find t i =
    let p = t.parent.(i) in
    if p = i then i
    else begin
      let r = find t p in
      t.parent.(i) <- r;
      r
    end

  (* false when [i] and [j] were already connected (the new edge closes a
     cycle) *)
  let union t i j =
    let ri = find t i and rj = find t j in
    if ri = rj then false
    else begin
      let ri, rj = if t.rank.(ri) < t.rank.(rj) then (rj, ri) else (ri, rj) in
      t.parent.(rj) <- ri;
      if t.rank.(ri) = t.rank.(rj) then t.rank.(ri) <- t.rank.(ri) + 1;
      true
    end

  let connected t i j = find t i = find t j
end

(* ------------------------------------------------------------------ *)
(* Maximum bipartite matching (Kuhn) on the MNA zero pattern *)

let max_matching ~rows ~cols adj =
  let match_col = Array.make cols (-1) in
  let match_row = Array.make rows (-1) in
  let visited = Array.make cols false in
  let rec try_row r =
    List.exists
      (fun c ->
        if visited.(c) then false
        else begin
          visited.(c) <- true;
          if match_col.(c) < 0 || try_row match_col.(c) then begin
            match_col.(c) <- r;
            match_row.(r) <- c;
            true
          end
          else false
        end)
      adj.(r)
  in
  let size = ref 0 in
  for r = 0 to rows - 1 do
    Array.fill visited 0 cols false;
    if try_row r then incr size
  done;
  (!size, match_row)

(* ------------------------------------------------------------------ *)
(* Check implementation *)

module D = Diagnostic

type indexed = {
  node_names : string array;  (** non-ground nodes *)
  node_idx : (string, int) Hashtbl.t;
  n_nodes : int;
}

let index_nodes devices =
  let node_idx = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun n ->
          let n = canon n in
          if n <> "0" && not (Hashtbl.mem node_idx n) then begin
            Hashtbl.add node_idx n (Hashtbl.length node_idx);
            order := n :: !order
          end)
        d.nodes)
    devices;
  let node_names = Array.of_list (List.rev !order) in
  { node_names; node_idx; n_nodes = Array.length node_names }

let check_duplicates devices =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun d ->
      if Hashtbl.mem seen d.name then
        Some
          (D.error ~code:"dup-name" ~loc:d.name
             (Printf.sprintf "device name %S is used more than once" d.name))
      else begin
        Hashtbl.add seen d.name ();
        None
      end)
    devices

let value_of_kind = function
  | Resistor v -> Some ("resistance", v)
  | Capacitor v -> Some ("capacitance", v)
  | Inductor v -> Some ("inductance", v)
  | Vsource | Isource | Nonlinear _ -> None

let check_values devices =
  List.concat_map
    (fun d ->
      match value_of_kind d.kind with
      | None -> []
      | Some (what, v) ->
        if not (Float.is_finite v) then
          [ D.error ~code:"zero-value" ~loc:d.name
              (Printf.sprintf "%s of %s is not finite (%g)" what d.name v) ]
        else if v = 0.0 then
          [ D.error ~code:"zero-value" ~loc:d.name
              (Printf.sprintf
                 "%s of %s is zero; the MNA stamp degenerates (use a small \
                  finite value instead)"
                 what d.name) ]
        else if v < 0.0 then
          [ D.warning ~code:"negative-value" ~loc:d.name
              (Printf.sprintf
                 "%s of %s is negative (%g); intentional negative elements \
                  are usually modelled behaviourally"
                 what d.name v) ]
        else [])
    devices

let has_ground devices =
  List.exists (fun d -> List.exists is_ground d.nodes) devices

(* one diagnostic per island of nodes not reachable from ground along the
   given edge set *)
let connectivity_check idx devices ~edges_of ~code ~severity ~describe =
  (* index 0..n-1 = nodes, index n = ground *)
  let uf = Uf.create (idx.n_nodes + 1) in
  let gidx = idx.n_nodes in
  let node_id n = if canon n = "0" then gidx else Hashtbl.find idx.node_idx (canon n) in
  List.iter
    (fun d ->
      List.iter (fun (a, b) -> ignore (Uf.union uf (node_id a) (node_id b))) (edges_of d))
    devices;
  let reach = Array.init idx.n_nodes (fun i -> Uf.connected uf i gidx) in
  (* one diagnostic per island: report the island's representative set *)
  let by_root = Hashtbl.create 8 in
  Array.iteri
    (fun i ok ->
      if not ok then begin
        let r = Uf.find uf i in
        let prev = try Hashtbl.find by_root r with Not_found -> [] in
        Hashtbl.replace by_root r (idx.node_names.(i) :: prev)
      end)
    reach;
  Hashtbl.fold
    (fun _root nodes acc ->
      let nodes = List.sort String.compare nodes in
      D.make severity ~code ~loc:(List.hd nodes) (describe nodes) :: acc)
    by_root []

let all_edges d =
  match d.nodes with
  | [] -> []
  | first :: rest -> List.map (fun n -> (first, n)) rest

let check_floating idx devices =
  connectivity_check idx devices ~edges_of:all_edges ~code:"floating-node"
    ~severity:D.Error ~describe:(fun nodes ->
      Printf.sprintf
        "node(s) %s are not connected to ground by any device; their \
         voltages are undefined"
        (String.concat ", " nodes))

let check_dc_path idx devices =
  connectivity_check idx devices ~edges_of:conduction_edges
    ~code:"no-dc-path" ~severity:D.Warning ~describe:(fun nodes ->
      Printf.sprintf
        "node(s) %s have no DC path to ground (only capacitors or current \
         sources); the operating point relies on the gmin leak"
        (String.concat ", " nodes))

let check_dangling idx devices =
  let count = Array.make idx.n_nodes 0 in
  List.iter
    (fun d ->
      List.iter
        (fun n ->
          let n = canon n in
          if n <> "0" then begin
            let i = Hashtbl.find idx.node_idx n in
            count.(i) <- count.(i) + 1
          end)
        d.nodes)
    devices;
  let diags = ref [] in
  Array.iteri
    (fun i c ->
      if c = 1 then
        diags :=
          D.warning ~code:"dangling-node" ~loc:idx.node_names.(i)
            (Printf.sprintf
               "node %s is attached to a single device terminal; no current \
                can flow through it"
               idx.node_names.(i))
          :: !diags)
    count;
  List.rev !diags

let check_loops idx devices =
  let uf = Uf.create (idx.n_nodes + 1) in
  let gidx = idx.n_nodes in
  let node_id n = if canon n = "0" then gidx else Hashtbl.find idx.node_idx (canon n) in
  let v_diags =
    List.filter_map
      (fun d ->
        match (d.kind, d.nodes) with
        | Vsource, a :: b :: _ ->
          if Uf.union uf (node_id a) (node_id b) then None
          else
            Some
              (D.error ~code:"vsource-loop" ~loc:d.name
                 (Printf.sprintf
                    "voltage source %s closes a loop of voltage sources \
                     between %s and %s; the branch currents are \
                     indeterminate"
                    d.name a b))
        | _ -> None)
      devices
  in
  let l_diags =
    List.filter_map
      (fun d ->
        match (d.kind, d.nodes) with
        | Inductor _, a :: b :: _ ->
          if Uf.union uf (node_id a) (node_id b) then None
          else
            Some
              (D.error ~code:"inductor-loop" ~loc:d.name
                 (Printf.sprintf
                    "inductor %s closes a DC loop of inductors/voltage \
                     sources between %s and %s; the DC system is singular"
                    d.name a b))
        | _ -> None)
      devices
  in
  v_diags @ l_diags

(* --- structural MNA rank ------------------------------------------- *)

type pattern_mode = Dc_pattern | Tran_pattern

let build_pattern idx devices mode =
  let branches = Hashtbl.create 8 in
  let n_branches = ref 0 in
  List.iter
    (fun d ->
      match d.kind with
      | Vsource | Inductor _ ->
        Hashtbl.replace branches d.name (idx.n_nodes + !n_branches);
        incr n_branches
      | Resistor _ | Capacitor _ | Isource | Nonlinear _ -> ())
    devices;
  let size = idx.n_nodes + !n_branches in
  let adj = Array.make size [] in
  let added = Hashtbl.create 64 in
  let nid n = if canon n = "0" then -1 else Hashtbl.find idx.node_idx (canon n) in
  let add r c =
    if r >= 0 && c >= 0 && not (Hashtbl.mem added (r, c)) then begin
      Hashtbl.add added (r, c) ();
      adj.(r) <- c :: adj.(r)
    end
  in
  let conduct a b =
    let ia = nid a and ib = nid b in
    add ia ia;
    add ia ib;
    add ib ia;
    add ib ib
  in
  List.iter
    (fun d ->
      match (d.kind, d.nodes) with
      | Resistor _, a :: b :: _ -> conduct a b
      | Capacitor _, a :: b :: _ -> begin
        match mode with Dc_pattern -> () | Tran_pattern -> conduct a b
      end
      | Inductor _, a :: b :: _ ->
        let br = Hashtbl.find branches d.name in
        let ia = nid a and ib = nid b in
        add ia br;
        add ib br;
        add br ia;
        add br ib;
        (match mode with Dc_pattern -> () | Tran_pattern -> add br br)
      | Vsource, a :: b :: _ ->
        let br = Hashtbl.find branches d.name in
        let ia = nid a and ib = nid b in
        add ia br;
        add ib br;
        add br ia;
        add br ib
      | Isource, _ -> ()
      | Nonlinear { conduction; control }, _ ->
        List.iter (fun (a, b) -> conduct a b) conduction;
        List.iter (fun (r, c) -> add (nid r) (nid c)) control
      | (Resistor _ | Capacitor _ | Inductor _ | Vsource), _ -> ())
    devices;
  let branch_names = Array.make !n_branches "" in
  Hashtbl.iter (fun name i -> branch_names.(i - idx.n_nodes) <- name) branches;
  (size, adj, branch_names)

let row_label idx branch_names r =
  if r < idx.n_nodes then Printf.sprintf "node %s" idx.node_names.(r)
  else Printf.sprintf "branch of %s" branch_names.(r - idx.n_nodes)

let check_structure idx devices =
  let structural mode ~code ~severity ~what =
    let size, adj, branch_names = build_pattern idx devices mode in
    if size = 0 then []
    else begin
      let rank, match_row = max_matching ~rows:size ~cols:size adj in
      if rank >= size then []
      else begin
        let unmatched = ref [] in
        Array.iteri
          (fun r c -> if c < 0 then unmatched := r :: !unmatched)
          match_row;
        let rows =
          List.rev_map (row_label idx branch_names) !unmatched
          |> List.sort String.compare
        in
        [ D.make severity ~code
            ~loc:(match rows with x :: _ -> x | [] -> "netlist")
            (Printf.sprintf
               "%s: structural rank %d of %d; equation(s) without an \
                independent unknown: %s"
               what rank size (String.concat "; " rows)) ]
      end
    end
  in
  let tran =
    structural Tran_pattern ~code:"singular-structure" ~severity:D.Error
      ~what:"transient MNA zero-pattern is structurally singular"
  in
  let dc =
    structural Dc_pattern ~code:"dc-singular" ~severity:D.Warning
      ~what:"DC MNA zero-pattern is structurally singular (gmin will \
             regularize it)"
  in
  tran @ dc

let check devices =
  let dup = check_duplicates devices in
  let values = check_values devices in
  if devices = [] then
    [ D.error ~code:"no-ground" ~loc:"netlist" "the netlist has no devices" ]
  else if not (has_ground devices) then
    dup @ values
    @ [ D.error ~code:"no-ground" ~loc:"netlist"
          "no device is connected to ground (node 0/gnd); the node \
           voltages have no reference" ]
  else begin
    let idx = index_nodes devices in
    let floating = check_floating idx devices in
    let loops = check_loops idx devices in
    let dangling = check_dangling idx devices in
    let dc_path = if floating = [] then check_dc_path idx devices else [] in
    (* loop and island errors already explain a rank deficiency; only run
       the matching when they are absent so each defect maps to one code *)
    let structure =
      if floating = [] && loops = [] then
        let s = check_structure idx devices in
        if dc_path = [] then s
        else List.filter (fun (d : D.t) -> d.code <> "dc-singular") s
      else []
    in
    dup @ values @ floating @ loops @ structure @ dc_path @ dangling
  end
