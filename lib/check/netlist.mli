(** Structural pre-flight analysis of a circuit netlist.

    The analyzer works on an engine-independent device view, so it has no
    dependency on the SPICE layer; [Spice.Preflight] translates a
    [Spice.Circuit.t] into this view and every analysis entry point runs
    {!check} before touching the numerics.

    Diagnostic codes emitted here:

    - [dup-name] (error): device name used more than once
    - [no-ground] (error): no device touches node [0]/[gnd]
    - [zero-value] (error): zero or non-finite R/L/C value
    - [negative-value] (warning): negative R/L/C value
    - [floating-node] (error): island of nodes with no connection to ground
    - [vsource-loop] (error): cycle of voltage sources
    - [inductor-loop] (error): DC cycle of inductors/voltage sources
    - [singular-structure] (error): transient MNA zero pattern is
      structurally rank-deficient (maximum-matching test)
    - [dc-singular] (warning): DC zero pattern is rank-deficient (the
      gmin leak regularizes it)
    - [no-dc-path] (warning): node reaches ground only through capacitors
      or current sources
    - [dangling-node] (warning): node attached to a single terminal *)

type kind =
  | Resistor of float
  | Capacitor of float
  | Inductor of float
  | Vsource
  | Isource
  | Nonlinear of {
      conduction : (string * string) list;
          (** terminal pairs joined by a DC conduction stamp *)
      control : (string * string) list;
          (** extra Jacobian pattern entries: (row node, column node),
              e.g. the gm coupling of a MOSFET's gate into its drain row *)
    }

type device = {
  name : string;
  kind : kind;
  nodes : string list;  (** all terminals, in device order *)
}

val is_ground : string -> bool
(** ["0"] or ["gnd"], case-insensitive. *)

val resistor : name:string -> n1:string -> n2:string -> float -> device
val capacitor : name:string -> n1:string -> n2:string -> float -> device
val inductor : name:string -> n1:string -> n2:string -> float -> device
val vsource : name:string -> np:string -> nn:string -> device
val isource : name:string -> np:string -> nn:string -> device

val two_terminal : name:string -> np:string -> nn:string -> device
(** A two-terminal nonlinear conductor (diode, tunnel diode,
    behavioural source): conducts DC between its terminals. *)

val multi_terminal :
  name:string -> nodes:string list -> conduction:(string * string) list ->
  control:(string * string) list -> device

val check : device list -> Diagnostic.t list
(** Full pre-flight report, errors first within each category. An empty
    list means the netlist passed every structural check. *)
