(* A tiny key = value format describing a SHIL study, so that analysis
   configurations can be linted (and later run) without writing OCaml:

     # tanh oscillator, 3rd sub-harmonic
     osc = tanh
     r = 1e3
     fc = 1e6
     q = 10
     n = 3
     vi = 0.03

   Lines are `key = value`; `#`, `;` or `*` start comments. The tank is
   given either as r/l/c or as r/fc/q (the latter pair is converted).
   Unknown keys are reported as warnings so that typos do not silently
   fall back to defaults. *)

module D = Diagnostic

type t = {
  osc : string;
  g0 : float option;
  isat : float option;
  r : float option;
  l : float option;
  c : float option;
  fc : float option;
  q : float option;
  n : int;
  vi : float;
  a_lo : float option;
  a_hi : float option;
  n_phi : int option;
  n_amp : int option;
  points : int option;
}

let default =
  {
    osc = "tanh";
    g0 = None;
    isat = None;
    r = None;
    l = None;
    c = None;
    fc = None;
    q = None;
    n = 3;
    vi = 0.03;
    a_lo = None;
    a_hi = None;
    n_phi = None;
    n_amp = None;
    points = None;
  }

let strip_comment line =
  let cut c s =
    match String.index_opt s c with Some i -> String.sub s 0 i | None -> s
  in
  line |> cut '#' |> cut ';' |> String.trim

let known_keys =
  [ "osc"; "g0"; "isat"; "r"; "l"; "c"; "fc"; "q"; "n"; "vi"; "a_lo";
    "a_hi"; "n_phi"; "n_amp"; "points" ]

let parse_string ?(name = "<scenario>") text =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loc lineno = Printf.sprintf "%s:%d" name lineno in
  let scenario = ref default in
  let float_field lineno key v k =
    match float_of_string_opt v with
    | Some f -> scenario := k !scenario f
    | None ->
      add
        (D.error ~code:"scenario-parse" ~loc:(loc lineno)
           (Printf.sprintf "cannot parse %s value %S as a number" key v))
  in
  let int_field lineno key v k =
    match int_of_string_opt v with
    | Some i -> scenario := k !scenario i
    | None ->
      add
        (D.error ~code:"scenario-parse" ~loc:(loc lineno)
           (Printf.sprintf "cannot parse %s value %S as an integer" key v))
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = strip_comment raw in
      if String.length line > 0 && line.[0] <> '*' then begin
        match String.index_opt line '=' with
        | None ->
          add
            (D.error ~code:"scenario-parse" ~loc:(loc lineno)
               (Printf.sprintf "expected `key = value`, got %S" line))
        | Some eq ->
          let key =
            String.lowercase_ascii (String.trim (String.sub line 0 eq))
          in
          let v =
            String.trim
              (String.sub line (eq + 1) (String.length line - eq - 1))
          in
          if not (List.mem key known_keys) then
            add
              (D.warning ~code:"scenario-unknown-key" ~loc:(loc lineno)
                 (Printf.sprintf
                    "unknown key %S is ignored (known keys: %s)" key
                    (String.concat ", " known_keys)))
          else begin
            match key with
            | "osc" -> scenario := { !scenario with osc = String.lowercase_ascii v }
            | "g0" -> float_field lineno key v (fun s f -> { s with g0 = Some f })
            | "isat" -> float_field lineno key v (fun s f -> { s with isat = Some f })
            | "r" -> float_field lineno key v (fun s f -> { s with r = Some f })
            | "l" -> float_field lineno key v (fun s f -> { s with l = Some f })
            | "c" -> float_field lineno key v (fun s f -> { s with c = Some f })
            | "fc" -> float_field lineno key v (fun s f -> { s with fc = Some f })
            | "q" -> float_field lineno key v (fun s f -> { s with q = Some f })
            | "n" -> int_field lineno key v (fun s i -> { s with n = i })
            | "vi" -> float_field lineno key v (fun s f -> { s with vi = f })
            | "a_lo" -> float_field lineno key v (fun s f -> { s with a_lo = Some f })
            | "a_hi" -> float_field lineno key v (fun s f -> { s with a_hi = Some f })
            | "n_phi" -> int_field lineno key v (fun s i -> { s with n_phi = Some i })
            | "n_amp" -> int_field lineno key v (fun s i -> { s with n_amp = Some i })
            | "points" -> int_field lineno key v (fun s i -> { s with points = Some i })
            | _ -> ()
          end
      end)
    (String.split_on_char '\n' text);
  (!scenario, List.rev !diags)

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string ~name:(Filename.basename path) text

(* Resolve the tank to r/l/c: explicit l/c win; otherwise fc/q are
   converted (L = R/(Q wc), C = Q/(R wc)); remaining holes take the
   defaults of the `oshil` custom oscillator (r = 1 kOhm, fc = 1 MHz,
   Q = 10). Sign is NOT forced here — a negative q deliberately flows
   into a negative l/c so that Shil.check_tank reports it. *)
let resolve_tank s =
  let r = Option.value s.r ~default:1e3 in
  let fc = Option.value s.fc ~default:1e6 in
  let q = Option.value s.q ~default:10.0 in
  let wc = 2.0 *. Float.pi *. fc in
  let l = match s.l with Some l -> l | None -> r /. (q *. wc) in
  let c = match s.c with Some c -> c | None -> q /. (r *. wc) in
  (r, l, c)

let to_config s =
  let r, l, c = resolve_tank s in
  let a_range =
    match (s.a_lo, s.a_hi) with
    | Some lo, Some hi -> Some (lo, hi)
    | Some lo, None -> Some (lo, lo)  (* empty: flagged by check_grid *)
    | None, Some hi -> Some (hi, hi)
    | None, None -> None
  in
  Shil.config ?a_range ?n_phi:s.n_phi ?n_amp:s.n_amp ?points:s.points ~r ~l
    ~c ~n:s.n ~vi:s.vi ()

let check ?nl s =
  let cfg = to_config s in
  let osc_diag =
    match s.osc with
    | "tanh" | "custom" | "diffpair" | "diff-pair" | "dp" | "tunnel" | "td" ->
      []
    | other ->
      [ D.error ~code:"scenario-osc" ~loc:"osc"
          (Printf.sprintf
             "unknown oscillator %S (expected tanh, custom, diffpair or \
              tunnel)"
             other) ]
  in
  osc_diag @ Shil.check ?nl ?v_scale:None cfg
