(** Pre-flight validation of a SHIL describing-function analysis.

    Operates on raw tank/injection/grid parameters (not on the typed
    [Shil.Tank.t]) so a bad configuration is rejected with a located
    diagnostic instead of an [Invalid_argument] from a constructor.

    Diagnostic codes emitted here:

    - [tank-nonpositive] (error): R, L or C not finite or <= 0
    - [tank-low-q] (warning): Q below the filter-hypothesis regime
    - [order] (error when n < 1, warning when absurdly high)
    - [inj-negative] (error): |Vi| negative or not finite
    - [inj-zero] (warning): |Vi| = 0 degenerates to the free oscillator
    - [grid-range] / [grid-size] (error), [grid-coarse] (warning)
    - [nl-nonfinite] (error): the nonlinearity probe returned NaN/inf
    - [nl-offset] / [nl-passive] (warning), [nl-asymmetric] /
      [nl-nonmonotone] (info): physics sanity probes of [i = f(v)] *)

type config = {
  r : float;  (** tank resistance, Ohm *)
  l : float;  (** tank inductance, H *)
  c : float;  (** tank capacitance, F *)
  n : int;  (** sub-harmonic order *)
  vi : float;  (** injection phasor magnitude, V *)
  a_range : (float * float) option;  (** amplitude grid bounds *)
  n_phi : int option;
  n_amp : int option;
  points : int option;  (** quadrature points per sample *)
}

val config :
  ?a_range:float * float -> ?n_phi:int -> ?n_amp:int -> ?points:int ->
  r:float -> l:float -> c:float -> n:int -> vi:float -> unit -> config

val check_tank : r:float -> l:float -> c:float -> Diagnostic.t list
val check_injection : n:int -> vi:float -> Diagnostic.t list

val check_grid :
  ?a_range:float * float -> ?n_phi:int -> ?n_amp:int -> ?points:int ->
  unit -> Diagnostic.t list

val check_nonlinearity :
  ?v_scale:float -> (float -> float) -> Diagnostic.t list
(** Probes [f] on [[-v_scale, v_scale]] (default 1 V): finiteness,
    [f(0) ~ 0], negative small-signal conductance, odd symmetry and
    monotonicity. Exceptions raised by [f] are treated as non-finite
    samples, never propagated. *)

val check :
  ?nl:(float -> float) -> ?v_scale:float -> config -> Diagnostic.t list
(** Union of all the above for one configuration. *)
