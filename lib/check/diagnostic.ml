type severity = Error | Warning | Info

type t = { severity : severity; code : string; loc : string; msg : string }

let make severity ~code ~loc msg = { severity; code; loc; msg }
let error ~code ~loc msg = make Error ~code ~loc msg
let warning ~code ~loc msg = make Warning ~code ~loc msg
let info ~code ~loc msg = make Info ~code ~loc msg

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let is_error d = match d.severity with Error -> true | Warning | Info -> false
let errors ds = List.filter is_error ds

let count_severity sev ds =
  List.length (List.filter (fun d -> d.severity = sev) ds)

let worst ds =
  List.fold_left
    (fun acc d ->
      match (acc, d.severity) with
      | Some Error, _ | _, Error -> Some Error
      | Some Warning, _ | _, Warning -> Some Warning
      | _ -> Some Info)
    None ds

let pp ppf d =
  Format.fprintf ppf "%s[%s] %s: %s" (severity_label d.severity) d.code d.loc
    d.msg

let pp_report ppf ds =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp)
    ds

(* Minimal JSON escaping; diagnostics only ever carry printable ASCII but
   node names come from user netlists, so quote defensively. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"severity":"%s","code":"%s","loc":"%s","msg":"%s"}|}
    (severity_label d.severity) (json_escape d.code) (json_escape d.loc)
    (json_escape d.msg)

let list_to_json ds =
  Printf.sprintf "[%s]" (String.concat "," (List.map to_json ds))

exception Failed of t list

let () =
  Printexc.register_printer (function
    | Failed ds ->
      Some
        (Format.asprintf "Check failed with %d error(s):@,%a"
           (List.length (errors ds))
           pp_report (errors ds))
    | _ -> None)

type gate_mode = [ `Enforce | `Warn | `Off ]

let gate ?(mode = `Enforce) ~emit ds =
  match (mode : gate_mode) with
  | `Off -> ()
  | `Warn -> List.iter emit ds
  | `Enforce ->
    let errs, rest = List.partition is_error ds in
    List.iter emit rest;
    if errs <> [] then raise (Failed errs)
