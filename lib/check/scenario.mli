(** SHIL scenario files: a [key = value] description of an analysis
    configuration that [oshil lint] (and future batch runners) can
    validate without executing anything.

    Recognized keys: [osc] (tanh | custom | diffpair | tunnel), [g0],
    [isat], [r], [l], [c], [fc], [q], [n], [vi], [a_lo], [a_hi],
    [n_phi], [n_amp], [points]. [#], [;] and leading [*] start comments.
    The tank is given as r/l/c, or as r/fc/q which is converted.

    Additional diagnostic codes: [scenario-parse] (error),
    [scenario-osc] (error), [scenario-unknown-key] (warning). *)

type t = {
  osc : string;
  g0 : float option;
  isat : float option;
  r : float option;
  l : float option;
  c : float option;
  fc : float option;
  q : float option;
  n : int;
  vi : float;
  a_lo : float option;
  a_hi : float option;
  n_phi : int option;
  n_amp : int option;
  points : int option;
}

val default : t
(** [osc = tanh, n = 3, vi = 0.03], everything else unset. *)

val parse_string : ?name:string -> string -> t * Diagnostic.t list
(** Never fails: parse problems are returned as diagnostics (located
    [name:line]) alongside the best-effort scenario. *)

val parse_file : string -> t * Diagnostic.t list

val resolve_tank : t -> float * float * float
(** [(r, l, c)] with fc/q converted and defaults filled in
    (r = 1 kOhm, fc = 1 MHz, Q = 10). *)

val to_config : t -> Shil.config

val check : ?nl:(float -> float) -> t -> Diagnostic.t list
(** Validates the resolved configuration with {!Shil.check}; pass the
    oscillator's nonlinearity as [nl] to include the pointwise probes. *)
