(** Perturbation projection vector (PPV) of a periodic orbit — the phase
    sensitivity function of Demir et al. used by the PPV-based SHIL
    analysis the paper compares against.

    The PPV [v1(t)] is the periodic solution of the adjoint variational
    equation [dp/dt = -J(x(t))^T p] normalised so that
    [v1(t) . F(x(t)) = 1] for all [t]; [v1(t) . b] is the instantaneous
    phase-slip rate caused by a state-space perturbation [b]. *)

type t = {
  orbit : Orbit.t;
  samples : float array array;  (** [v1] at the orbit's sample times *)
  monodromy : Numerics.Linalg.mat;
  floquet_mu : float;  (** the non-unit Floquet multiplier (2-D systems) *)
}

val compute : ?jac_eps:float -> f:Numerics.Ode.system -> Orbit.t -> t
(** Integrates the adjoint equation from the left eigenvector of the
    monodromy matrix for the unit multiplier; Jacobians of [f] are
    finite-difference with relative step [jac_eps] (default 1e-7).
    Raises [Failure] when the unit multiplier is missing (not an
    oscillator orbit) and [Invalid_argument] on a state dimension other
    than 2. *)

val at : t -> float -> float array
(** Periodic interpolation of the PPV. *)

val normalization_error : t -> float
(** [max_t |v1(t) . F(x(t)) - 1|] — a built-in accuracy check (should be
    << 1). *)

val fourier_component : t -> component:int -> k:int -> Numerics.Cx.t
(** Two-sided Fourier coefficient [V_k] of one PPV component over the
    orbit period. *)
