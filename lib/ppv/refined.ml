let free_running_frequency ?(settle_periods = 300.0) nl ~tank =
  let { Shil.Tank.r; l; c } = tank in
  let f_sys _t (y : float array) =
    let v = y.(0) and il = y.(1) in
    [| ((-.v /. r) -. il -. Shil.Nonlinearity.eval nl v) /. c; v /. l |]
  in
  let orbit =
    Orbit.from_transient ~settle_periods ~f:f_sys ~x_start:[| 1e-3; 0.0 |]
      ~period_estimate:(1.0 /. Shil.Tank.f_c tank)
      ()
  in
  1.0 /. orbit.Orbit.period

let recenter (lr : Shil.Lock_range.t) ~f0 ~tank =
  let scale = f0 /. Shil.Tank.f_c tank in
  {
    lr with
    Shil.Lock_range.f_osc_low = lr.f_osc_low *. scale;
    f_osc_high = lr.f_osc_high *. scale;
    f_inj_low = lr.f_inj_low *. scale;
    f_inj_high = lr.f_inj_high *. scale;
    delta_f_inj = lr.delta_f_inj *. scale;
  }

let lock_range ?points nl ~tank ~n ~vi =
  let r = (tank : Shil.Tank.t).r in
  let a_nat =
    match Shil.Natural.predicted_amplitude nl ~r with
    | Some a -> a
    | None ->
      Resilience.Oshil_error.raise_ Ppv ~phase:"refined" No_oscillation
        "oscillator does not oscillate"
        ~remedy:"check the nonlinearity gain against 1/R"
  in
  let grid =
    Shil.Grid.sample ?points nl ~n ~r ~vi
      ~a_range:(0.25 *. a_nat, 1.3 *. a_nat)
      ()
  in
  let plain = Shil.Lock_range.predict ?points grid ~tank in
  recenter plain ~f0:(free_running_frequency nl ~tank) ~tank
