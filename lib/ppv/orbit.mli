(** Periodic steady state of an autonomous ODE [dx/dt = F(x)] by
    single shooting — the first ingredient of the PPV baseline [17].

    Unknowns are the initial state [x0] and the period [T]; the phase is
    pinned by requiring the first state component to start at an
    extremum ([F_0(x0) = 0]). A settled transient provides the initial
    guess. *)

type t = {
  x0 : float array;
  period : float;
  times : float array;  (** uniform mesh over one period, [n_samples] points *)
  states : float array array;  (** orbit samples at [times] *)
}

val find :
  ?steps_per_period:int -> ?n_samples:int -> ?max_iter:int -> ?tol:float ->
  f:Numerics.Ode.system -> guess_x0:float array -> guess_period:float ->
  unit -> t
(** Newton shooting with finite-difference sensitivities. [tol] (default
    1e-10) is on the shooting residual; [steps_per_period] (default 400)
    controls the RK4 integration; the converged orbit is resampled at
    [n_samples] (default 256) uniform instants. Raises
    {!Resilience.Oshil_error.Error} ([root-failure], subsystem [ppv],
    phase ["orbit"]) on divergence. *)

val from_transient :
  ?settle_periods:float -> ?steps_per_period:int -> ?n_samples:int ->
  f:Numerics.Ode.system -> x_start:float array -> period_estimate:float ->
  unit -> t
(** Convenience: integrate [settle_periods] (default 200) periods to reach
    the attractor, locate a maximum of component 0 for the phase anchor,
    then call {!find}. *)

val state_at : t -> float -> float array
(** Periodic linear interpolation of the orbit at any time. *)
