module Linalg = Numerics.Linalg
module Ode = Numerics.Ode

type t = {
  orbit : Orbit.t;
  samples : float array array;
  monodromy : Linalg.mat;
  floquet_mu : float;
}

let jacobian ~jac_eps ~f t x =
  let dim = Array.length x in
  let fx = f t x in
  Array.init dim (fun r ->
      Array.init dim (fun c ->
          let h = jac_eps *. (1.0 +. Float.abs x.(c)) in
          let x' = Array.copy x in
          x'.(c) <- x'.(c) +. h;
          ((f t x').(r) -. fx.(r)) /. h))

let compute ?(jac_eps = 1e-7) ~f orbit =
  let dim = Array.length orbit.Orbit.x0 in
  let period = orbit.Orbit.period in
  let n = Array.length orbit.Orbit.times in
  let steps = 8 * n in
  let dt = period /. float_of_int steps in
  (* monodromy: integrate the variational equation dPhi/dt = J Phi along
     the orbit (columns as separate linear ODEs, same RK4 mesh) *)
  let j_at t = jacobian ~jac_eps ~f t (Orbit.state_at orbit t) in
  let var_system t phi_col = Linalg.mat_vec (j_at t) phi_col in
  let monodromy =
    Array.init dim (fun c ->
        let col = Array.init dim (fun r -> if r = c then 1.0 else 0.0) in
        Ode.rk4_final (fun t y -> var_system t y) ~t0:0.0 ~t1:period ~dt ~y0:col)
    |> Linalg.transpose
  in
  (* 2-D: multipliers are 1 (phase) and mu = det M *)
  let floquet_mu =
    if dim = 2 then Linalg.lu_det (Linalg.lu_factor (Linalg.copy monodromy))
    else Float.nan
  in
  (* left eigenvector for multiplier 1: (M^T - I) q = 0 *)
  let mt = Linalg.transpose monodromy in
  let a = Array.mapi (fun r row -> Array.mapi (fun c v -> if r = c then v -. 1.0 else v) row) mt in
  let fail ?context kind msg =
    Resilience.Oshil_error.raise_ Ppv ~phase:"sensitivity" kind msg ?context
      ~remedy:"tighten the orbit (smaller tol / more steps) first"
  in
  let q =
    if dim <> 2 then invalid_arg "Ppv.compute: only 2-D systems supported"
    else begin
      let q1 = [| -.a.(0).(1); a.(0).(0) |] in
      let q2 = [| -.a.(1).(1); a.(1).(0) |] in
      let norm v = sqrt ((v.(0) *. v.(0)) +. (v.(1) *. v.(1))) in
      let q = if norm q1 >= norm q2 then q1 else q2 in
      if norm q < 1e-12 then
        fail Singular_system "unit Floquet multiplier not found";
      q
    end
  in
  (* residual check that q is a left eigenvector for 1 *)
  let mq = Linalg.mat_vec mt q in
  let err = Linalg.norm_inf (Linalg.vec_sub mq q) /. Linalg.norm_inf q in
  if err > 1e-3 then
    fail Solver_divergence
      "left eigenvector residual too large (orbit unstable or inaccurate)"
      ~context:[ ("residual", Printf.sprintf "%.3g" err) ];
  (* normalise: v1(0) . F(x(0)) = 1 *)
  let fx0 = f 0.0 orbit.Orbit.x0 in
  let denom = Linalg.dot q fx0 in
  if Float.abs denom < 1e-300 then
    fail Singular_system "degenerate PPV normalisation";
  let p0 = Linalg.vec_scale (1.0 /. denom) q in
  (* adjoint integration: dp/dt = -J^T p, sampled on the orbit mesh *)
  let adj t p = Linalg.vec_scale (-1.0) (Linalg.mat_vec (Linalg.transpose (j_at t)) p) in
  let samples = Array.make n p0 in
  let p = ref (Array.copy p0) in
  let t = ref 0.0 in
  for s = 0 to n - 1 do
    let target = orbit.Orbit.times.(s) in
    while !t < target -. 1e-18 do
      let h = Float.min dt (target -. !t) in
      p := Ode.rk4_step adj ~t:!t ~dt:h !p;
      t := !t +. h
    done;
    samples.(s) <- Array.copy !p
  done;
  { orbit; samples; monodromy; floquet_mu }

let at t_ppv time =
  let orbit = t_ppv.orbit in
  let n = Array.length orbit.Orbit.times in
  let tau = Float.rem time orbit.Orbit.period in
  let tau = if tau < 0.0 then tau +. orbit.Orbit.period else tau in
  let pos = tau /. orbit.Orbit.period *. float_of_int n in
  let i = int_of_float pos mod n in
  let frac = pos -. Float.of_int (int_of_float pos) in
  let j = (i + 1) mod n in
  Array.init
    (Array.length t_ppv.samples.(0))
    (fun k ->
      t_ppv.samples.(i).(k) +. (frac *. (t_ppv.samples.(j).(k) -. t_ppv.samples.(i).(k))))

let normalization_error t_ppv =
  (* v1 . dx/dt must equal 1 everywhere; estimate dx/dt by centred
     differences of the orbit samples (plenty for a sanity check) *)
  let orbit = t_ppv.orbit in
  let worst = ref 0.0 in
  let n = Array.length orbit.Orbit.times in
  let dim = Array.length orbit.Orbit.x0 in
  let dt = orbit.Orbit.period /. float_of_int n in
  for s = 0 to n - 1 do
    let sp = (s + 1) mod n and sm = (s + n - 1) mod n in
    let deriv =
      Array.init dim (fun k ->
          (orbit.Orbit.states.(sp).(k) -. orbit.Orbit.states.(sm).(k)) /. (2.0 *. dt))
    in
    let dot = Numerics.Linalg.dot t_ppv.samples.(s) deriv in
    worst := Float.max !worst (Float.abs (dot -. 1.0))
  done;
  !worst

let fourier_component t_ppv ~component ~k =
  let xs = Array.map (fun p -> p.(component)) t_ppv.samples in
  Numerics.Fourier.coeff_sampled xs ~k
