module Ode = Numerics.Ode

type t = {
  x0 : float array;
  period : float;
  times : float array;
  states : float array array;
}

let no_orbit ?context msg =
  Resilience.Oshil_error.raise_ Ppv ~phase:"orbit" Root_failure msg ?context
    ~remedy:"improve the initial guess or raise steps_per_period"

let flow ~f ~steps x0 t1 =
  if t1 <= 0.0 then Array.copy x0
  else Ode.rk4_final f ~t0:0.0 ~t1 ~dt:(t1 /. float_of_int steps) ~y0:x0

(* residual: [x(T) - x0 ; F_0(x0)] over unknowns [x0 ; T] *)
let residual ~f ~steps u =
  let dim = Array.length u - 1 in
  let x0 = Array.sub u 0 dim in
  let period = u.(dim) in
  if period <= 0.0 then Array.make (dim + 1) 1e3
  else begin
    let xT = flow ~f ~steps x0 period in
    let r = Array.make (dim + 1) 0.0 in
    for k = 0 to dim - 1 do
      r.(k) <- xT.(k) -. x0.(k)
    done;
    r.(dim) <- (f 0.0 x0).(0) *. 1e-0;
    r
  end

let find ?(steps_per_period = 400) ?(n_samples = 256) ?(max_iter = 40)
    ?(tol = 1e-10) ~f ~guess_x0 ~guess_period () =
  let dim = Array.length guess_x0 in
  let m = dim + 1 in
  let u = Array.append guess_x0 [| guess_period |] in
  (* scale for finite differences and convergence tests *)
  let scale k = if k = dim then guess_period else 1.0 +. Float.abs guess_x0.(k) in
  let converged = ref false in
  let it = ref 0 in
  while (not !converged) && !it < max_iter do
    incr it;
    let r = residual ~f ~steps:steps_per_period u in
    let rnorm = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 r in
    if rnorm < tol then converged := true
    else begin
      (* finite-difference Jacobian *)
      let jac = Array.make_matrix m m 0.0 in
      for c = 0 to m - 1 do
        let h = 1e-7 *. scale c in
        let u' = Array.copy u in
        u'.(c) <- u'.(c) +. h;
        let r' = residual ~f ~steps:steps_per_period u' in
        for rr = 0 to m - 1 do
          jac.(rr).(c) <- (r'.(rr) -. r.(rr)) /. h
        done
      done;
      match Numerics.Linalg.solve jac r with
      | exception Numerics.Linalg.Singular ->
        no_orbit "singular shooting Jacobian"
          ~context:[ ("iteration", string_of_int !it) ]
      | du ->
        for k = 0 to m - 1 do
          (* damp huge steps *)
          let lim = 0.5 *. scale k in
          let d = if Float.abs du.(k) > lim then Float.copy_sign lim du.(k) else du.(k) in
          u.(k) <- u.(k) -. d
        done
    end
  done;
  if not !converged then
    no_orbit "shooting did not converge"
      ~context:[ ("max_iter", string_of_int max_iter) ];
  let x0 = Array.sub u 0 dim in
  let period = u.(dim) in
  (* resample the converged orbit on a uniform mesh *)
  let times = Array.init n_samples (fun s -> period *. float_of_int s /. float_of_int n_samples) in
  let states = Array.make n_samples x0 in
  let dt = period /. float_of_int (steps_per_period * 2) in
  let x = ref (Array.copy x0) in
  let t = ref 0.0 in
  for s = 0 to n_samples - 1 do
    let target = times.(s) in
    while !t < target -. 1e-18 do
      let h = Float.min dt (target -. !t) in
      x := Ode.rk4_step f ~t:!t ~dt:h !x;
      t := !t +. h
    done;
    states.(s) <- Array.copy !x
  done;
  { x0; period; times; states }

let from_transient ?(settle_periods = 200.0) ?steps_per_period ?n_samples ~f
    ~x_start ~period_estimate () =
  let t1 = settle_periods *. period_estimate in
  let dt = period_estimate /. 200.0 in
  let times, states = Ode.rk4 f ~t0:0.0 ~t1 ~dt ~y0:x_start in
  (* anchor: last maximum of component 0 *)
  let n = Array.length times in
  let anchor = ref None in
  let k = ref (n - 2) in
  while !anchor = None && !k > 1 do
    let a = states.(!k - 1).(0) and b = states.(!k).(0) and c = states.(!k + 1).(0) in
    if b >= a && b > c then anchor := Some !k;
    decr k
  done;
  let idx =
    match !anchor with Some i -> i | None -> no_orbit "no extremum found"
  in
  (* refine the period estimate from successive maxima *)
  let prev_max = ref None in
  let j = ref (idx - 5) in
  while !prev_max = None && !j > 1 do
    let a = states.(!j - 1).(0) and b = states.(!j).(0) and c = states.(!j + 1).(0) in
    if b >= a && b > c then prev_max := Some !j;
    decr j
  done;
  let period_guess =
    match !prev_max with
    | Some jdx -> times.(idx) -. times.(jdx)
    | None -> period_estimate
  in
  find ?steps_per_period ?n_samples ~f ~guess_x0:states.(idx)
    ~guess_period:period_guess ()

let state_at orb t =
  let n = Array.length orb.times in
  let tau = Float.rem t orb.period in
  let tau = if tau < 0.0 then tau +. orb.period else tau in
  let pos = tau /. orb.period *. float_of_int n in
  let i = int_of_float pos mod n in
  let frac = pos -. Float.of_int (int_of_float pos) in
  let j = (i + 1) mod n in
  Array.init
    (Array.length orb.x0)
    (fun k -> orb.states.(i).(k) +. (frac *. (orb.states.(j).(k) -. orb.states.(i).(k))))
