(** Typed-AST domain-safety & determinism analyzer.

    Reads the [.cmt] artifacts dune already produces for every module
    under [lib/] and walks their Typedtree, proving (to a static
    approximation) the contracts the runtime tests can only spot-check:
    parallel maps bit-identical to sequential runs, cache hits
    byte-identical to cold computes, no order-dependent float
    reductions, no untyped exceptions crossing library interfaces.

    Rule families (stable codes, each waivable with
    [(* dsa: allow CODE — justification *)]):

    - [domain-escape] — mutable state bound outside a closure passed to
      [Numerics.Pool.parallel_*] is written (refs, arrays, bytes,
      mutable record fields) or used as a shared container
      ([Hashtbl]/[Buffer]/[Queue]/[Stack]) inside it, without an
      [Atomic]/[Mutex] or a per-domain scope ([Kernel.with_bufs]
      buffers and [Domain.DLS] keys are recognized as safe).
    - [cache-purity] — expressions flowing into [Cache.Key.v] read
      module-level mutable state or call nondeterministic primitives
      (clocks, [Random], [Domain.self]); [Shil.Nonlinearity.make]
      called without [~key] (an uncacheable nonlinearity silently
      bypasses every keyed kernel).
    - [float-order] — [Hashtbl.fold] whose accumulator carries a
      [float] (iteration order is unspecified, float addition is not
      associative), [Hashtbl.iter] mutating float state, and
      [Seq.fold_left] over [Hashtbl.to_seq*] into a float.
    - [raise-escape] — [raise]/[invalid_arg]/[failwith] of an exception
      that is not [Resilience.Oshil_error.Error], not declared or
      mentioned in the module's own [.mli], and not caught by a
      lexically enclosing handler.

    Meta codes: [bad-waiver] (waiver without justification — does not
    suppress), [unused-waiver] (justified waiver matching no finding),
    [cmt-read] (unreadable artifact). Meta findings are warnings;
    rule findings are errors.

    Known approximations (documented in DESIGN §10): the analysis is
    intraprocedural (state reached through a function call in another
    module is not followed — that module is analyzed at its own
    definition site), a [Mutex.lock] anywhere inside a pool closure is
    trusted to guard its shared accesses, and type inspection is
    syntactic on constructor heads (no environment-based expansion of
    user aliases for [Hashtbl.t] & co). *)

val rule_codes : string list
(** The four stable rule-family codes. *)

val analyze_file : ?src_root:string -> string -> Check.Diagnostic.t list
(** Analyze one [.cmt] file: raw rule findings filtered through the
    waivers of its source file, plus [bad-waiver]/[unused-waiver]
    warnings. [src_root] locates sources when the analyzer does not run
    from the directory [cmt_sourcefile] paths are relative to (the
    workspace/build root); resolution tries [src_root/path], [path] and
    [_build/default/path]. *)

type report = {
  diags : (string * Check.Diagnostic.t list) list;
      (** per source file, findings sorted by line; only files with
          findings appear; sorted by file name *)
  modules : int;  (** modules analyzed *)
  waived : int;  (** findings suppressed by justified waivers *)
}

val run : ?src_root:string -> string list -> report
(** [run roots] walks each root (directory or literal [.cmt] path) for
    artifacts and analyzes them. A directory root that contains no
    [.cmt] is retried under [_build/default/] so the tool works both
    from a dune action (cwd = build context) and from a source
    checkout. *)
