(* Typed-AST walk over the .cmt artifacts dune produces. See the .mli
   for the rule inventory and the documented approximations. *)

module D = Check.Diagnostic

let rule_codes = [ "domain-escape"; "cache-purity"; "float-order"; "raise-escape" ]

type finding = { line : int; code : string; msg : string }

(* ------------------------------------------------------------------ *)
(* Path helpers: all matching is on dotted suffixes of [Path.name], so
   [Stdlib.Hashtbl.fold], [Hashtbl.fold] and [MoreLabels.Hashtbl.fold]
   all answer to ["Hashtbl.fold"]. *)

let path_has_suffix name suffix =
  name = suffix
  ||
  let nl = String.length name and sl = String.length suffix in
  nl > sl + 1
  && name.[nl - sl - 1] = '.'
  && String.sub name (nl - sl) sl = suffix

let path_matches p suffixes =
  let n = Path.name p in
  List.exists (path_has_suffix n) suffixes

(* ------------------------------------------------------------------ *)
(* Type classification: syntactic, on constructor heads. *)

type mut =
  | Mut of string  (** why: "ref", "Hashtbl.t", "array", ... *)
  | Sync  (** Atomic/Mutex/DLS — a recognized synchronization type *)
  | Pure

let sync_heads =
  [
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Domain.DLS.key";
  ]

let container_heads = [ "Hashtbl.t"; "Buffer.t"; "Queue.t"; "Stack.t" ]

let rec classify ?(depth = 0) ty =
  if depth > 8 then Pure
  else
    match Types.get_desc ty with
    | Types.Tconstr (p, args, _) ->
      let n = Path.name p in
      if List.exists (path_has_suffix n) sync_heads then Sync
      else if path_has_suffix n "ref" then Mut "ref"
      else if n = "array" || n = "floatarray" || path_has_suffix n "Float.Array.t"
      then Mut "array"
      else if n = "bytes" then Mut "bytes"
      else begin
        match List.find_opt (path_has_suffix n) container_heads with
        | Some head -> Mut head
        | None ->
          if n = "option" || n = "list" || path_has_suffix n "result" then
            List.fold_left
              (fun acc a ->
                match acc with
                | Mut _ | Sync -> acc
                | Pure -> classify ~depth:(depth + 1) a)
              Pure args
          else Pure
      end
    | Types.Ttuple ts ->
      List.fold_left
        (fun acc a ->
          match acc with
          | Mut _ | Sync -> acc
          | Pure -> classify ~depth:(depth + 1) a)
        Pure ts
    | Types.Tpoly (t, _) -> classify ~depth:(depth + 1) t
    | _ -> Pure

let rec type_mentions_float ?(depth = 0) ty =
  depth <= 8
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
    Path.name p = "float"
    || List.exists (type_mentions_float ~depth:(depth + 1)) args
  | Types.Ttuple ts -> List.exists (type_mentions_float ~depth:(depth + 1)) ts
  | Types.Tarrow (_, a, b, _) ->
    type_mentions_float ~depth:(depth + 1) a
    || type_mentions_float ~depth:(depth + 1) b
  | Types.Tpoly (t, _) -> type_mentions_float ~depth:(depth + 1) t
  | _ -> false

let is_arrow ty =
  match Types.get_desc ty with
  | Types.Tarrow _ | Types.Tpoly _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Recognized operations *)

let pool_entry_points =
  [
    "Pool.parallel_for";
    "Pool.parallel_init";
    "Pool.parallel_map_array";
    "Pool.parallel_reduce";
    "Pool.parallel_try_map_array";
  ]

let ref_writers = [ ":="; "incr"; "decr" ]

let array_writers =
  [
    "Array.set";
    "Array.unsafe_set";
    "Array.fill";
    "Array.blit";
    "Float.Array.set";
    "Bytes.set";
    "Bytes.unsafe_set";
    "Bytes.fill";
    "Bytes.blit";
  ]

let nondet_calls =
  [
    "Unix.gettimeofday";
    "Unix.time";
    "Sys.time";
    "Random.int";
    "Random.float";
    "Random.bool";
    "Random.bits";
    "Random.self_init";
    "Domain.self";
    "Clock.now_ns";
    "Clock.elapsed_ns";
    "Clock.now";
  ]

let apply_head e =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | _ -> None

let exn_path_of_construct (cd : Types.constructor_description) =
  match cd.Types.cstr_tag with
  | Types.Cstr_extension (p, _) -> Some p
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Per-module analysis *)

type ctx = {
  modname : string;
  mli_text : string option;
  mutable module_mutables : Ident.t list;
      (** structure-level bindings with a mutable type *)
  mutable handler_stack : string list;
      (** exception constructor names caught by lexically enclosing
          handlers; ["*"] is a catch-all *)
  mutable out : finding list;
}

let report ctx ~line ~code msg = ctx.out <- { line; code; msg } :: ctx.out

let line_of (e : Typedtree.expression) =
  e.Typedtree.exp_loc.Location.loc_start.Lexing.pos_lnum

(* names an exception-handler pattern can catch *)
let rec handler_names : type k. k Typedtree.general_pattern -> string list =
 fun p ->
  match p.Typedtree.pat_desc with
  | Typedtree.Tpat_any | Typedtree.Tpat_var _ -> [ "*" ]
  | Typedtree.Tpat_alias (q, _, _) -> handler_names q
  | Typedtree.Tpat_construct (_, cd, _, _) -> [ cd.Types.cstr_name ]
  | Typedtree.Tpat_or (a, b, _) -> handler_names a @ handler_names b
  | Typedtree.Tpat_value v ->
    handler_names (v :> Typedtree.value Typedtree.general_pattern)
  | Typedtree.Tpat_exception q -> handler_names q
  | _ -> []

let subtree_has_lock outer =
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match apply_head e with
          | Some p when path_matches p [ "Mutex.lock"; "Mutex.protect" ] ->
            found := true
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it outer;
  !found

(* --- domain-escape: walk one closure passed to a Pool entry point --- *)

let walk_pool_closure ctx pool_name outer =
  let bound : Ident.t list ref = ref [] in
  let add_ids ids = bound := ids @ !bound in
  let add_pat : type k. k Typedtree.general_pattern -> unit =
   fun p -> add_ids (Typedtree.pat_bound_idents p)
  in
  let is_local id = List.exists (Ident.same id) !bound in
  let guarded = subtree_has_lock outer in
  let escape e name why action =
    if not guarded then
      report ctx ~line:(line_of e) ~code:"domain-escape"
        (Printf.sprintf
           "%s %s (%s) bound outside a closure passed to %s; use Atomic, a \
            Mutex, or per-domain state (Kernel.with_bufs / Domain.DLS)"
           action name why pool_name)
  in
  let nonlocal_mut (arg : Typedtree.expression) =
    match arg.Typedtree.exp_desc with
    | Typedtree.Texp_ident (Path.Pident id, _, _) when is_local id -> None
    | Typedtree.Texp_ident (p, _, _) -> begin
      match classify arg.Typedtree.exp_type with
      | Mut why -> Some (Path.name p, why)
      | Sync | Pure -> None
    end
    | _ -> None
  in
  let rec walk e =
    let open Typedtree in
    match e.exp_desc with
    | Texp_function { param; cases; _ } ->
      add_ids [ param ];
      List.iter
        (fun c ->
          add_pat c.c_lhs;
          Option.iter walk c.c_guard;
          walk c.c_rhs)
        cases
    | Texp_let (_, vbs, body) ->
      List.iter (fun vb -> add_pat vb.vb_pat) vbs;
      List.iter (fun vb -> walk vb.vb_expr) vbs;
      walk body
    | Texp_match (scrut, cases, _) ->
      walk scrut;
      List.iter
        (fun c ->
          add_pat c.c_lhs;
          Option.iter walk c.c_guard;
          walk c.c_rhs)
        cases
    | Texp_try (body, cases) ->
      walk body;
      List.iter
        (fun c ->
          add_pat c.c_lhs;
          Option.iter walk c.c_guard;
          walk c.c_rhs)
        cases
    | Texp_for (id, _, lo, hi, _, body) ->
      add_ids [ id ];
      walk lo;
      walk hi;
      walk body
    | Texp_setfield (base, _, _, value) ->
      (match nonlocal_mut base with
      | Some (name, _) -> escape e name "mutable record field" "write to"
      | None ->
        (* a write through any non-local ident of record type is a
           shared mutation even if the head type is not in the table *)
        (match base.exp_desc with
        | Texp_ident (Path.Pident id, _, _) when is_local id -> ()
        | Texp_ident (p, _, _) ->
          escape e (Path.name p) "mutable record field" "write to"
        | _ -> ()));
      walk base;
      walk value
    | Texp_apply (f, args) ->
      (match apply_head f with
      | Some p when path_matches p ref_writers ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some a -> (
              match nonlocal_mut a with
              | Some (name, why) -> escape a name why "write to"
              | None -> ())
            | None -> ())
          args
      | Some p when path_matches p array_writers ->
        List.iter
          (fun (_, a) ->
            match a with
            | Some a -> (
              match nonlocal_mut a with
              | Some (name, why) when why = "array" || why = "bytes" ->
                escape a name why "write to"
              | _ -> ())
            | None -> ())
          args
      | _ -> ());
      walk f;
      List.iter (fun (_, a) -> Option.iter walk a) args
    | Texp_ident (Path.Pident id, _, _) when is_local id -> ()
    | Texp_ident (p, _, _) -> begin
      (* shared containers are flagged on any captured use; refs,
         arrays and bytes only when written (reads of a frozen input
         are the normal way to feed a parallel kernel) *)
      match classify e.exp_type with
      | Mut why when List.mem why container_heads ->
        escape e (Path.name p) why "shared use of"
      | _ -> ()
    end
    | _ ->
      (* generic recursion for the remaining constructors *)
      let it =
        {
          Tast_iterator.default_iterator with
          expr = (fun _ e' -> if e' != e then walk e');
        }
      in
      Tast_iterator.default_iterator.expr it e
  in
  walk outer

(* --- cache-purity: walk expressions feeding Cache.Key.v --- *)

let walk_key_fields ctx outer =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun sub e ->
          (match e.Typedtree.exp_desc with
          | Typedtree.Texp_ident (p, _, _) -> begin
            let module_level =
              match p with
              | Path.Pident id ->
                List.exists (Ident.same id) ctx.module_mutables
              | _ -> true
            in
            if path_matches p nondet_calls then
              report ctx ~line:(line_of e) ~code:"cache-purity"
                (Printf.sprintf
                   "nondeterministic value %s flows into a Cache.Key — equal \
                    inputs must yield byte-identical preimages"
                   (Path.name p))
            else if module_level then begin
              match classify e.Typedtree.exp_type with
              | Mut why ->
                report ctx ~line:(line_of e) ~code:"cache-purity"
                  (Printf.sprintf
                     "mutable state %s (%s) read while building a Cache.Key; \
                      keys must depend only on the kernel's declared inputs"
                     (Path.name p) why)
              | Sync | Pure -> ()
            end
          end
          | _ -> ());
          Tast_iterator.default_iterator.expr sub e);
    }
  in
  it.expr it outer

(* ------------------------------------------------------------------ *)

let analyze_structure ~modname ~mli_text (str : Typedtree.structure) =
  let ctx =
    { modname; mli_text; module_mutables = []; handler_stack = []; out = [] }
  in
  (* pass A: structure-level bindings with mutable types (any module
     nesting depth, but never bindings inside expressions) *)
  let pass_a =
    {
      Tast_iterator.default_iterator with
      structure_item =
        (fun sub item ->
          (match item.Typedtree.str_desc with
          | Typedtree.Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                List.iter
                  (fun id ->
                    match classify vb.Typedtree.vb_pat.Typedtree.pat_type with
                    | Mut _ -> ctx.module_mutables <- id :: ctx.module_mutables
                    | Sync | Pure -> ())
                  (Typedtree.pat_bound_idents vb.Typedtree.vb_pat))
              vbs
          | _ -> ());
          Tast_iterator.default_iterator.structure_item sub item);
      (* do not descend into expressions: only structure-level lets *)
      expr = (fun _ _ -> ());
    }
  in
  pass_a.structure pass_a str;

  let mli_mentions word =
    match ctx.mli_text with
    | None -> false
    | Some text ->
      (* word-boundary search so [Error] does not match [Errors] *)
      let wl = String.length word and n = String.length text in
      let is_word c =
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
        | _ -> false
      in
      let rec find i =
        if i + wl > n then false
        else if
          String.sub text i wl = word
          && (i = 0 || not (is_word text.[i - 1]))
          && (i + wl = n || not (is_word text.[i + wl]))
        then true
        else find (i + 1)
      in
      find 0
  in
  let exn_documented exn_path =
    let last = Path.last exn_path in
    let name = Path.name exn_path in
    path_has_suffix name "Oshil_error.Error"
    || (path_has_suffix ctx.modname "Oshil_error" && last = "Error")
    || mli_mentions last
    || (last = "Invalid_argument" && mli_mentions "invalid_arg")
    || (last = "Failure" && mli_mentions "failwith")
    || List.exists
         (fun h -> h = "*" || h = last)
         ctx.handler_stack
  in
  let raise_escape e exn_path =
    if not (exn_documented exn_path) then
      report ctx ~line:(line_of e) ~code:"raise-escape"
        (Printf.sprintf
           "%s can escape the library interface untyped; raise \
            Resilience.Oshil_error.Error, declare/document the exception in \
            this module's .mli, or catch it locally"
           (Path.last exn_path))
  in
  let predef name = Path.Pident (Ident.create_predef name) in

  let rec main_expr sub (e : Typedtree.expression) =
    let open Typedtree in
    match e.exp_desc with
    | Texp_try (body, cases) ->
      let caught = List.concat_map (fun c -> handler_names c.c_lhs) cases in
      let saved = ctx.handler_stack in
      ctx.handler_stack <- caught @ saved;
      main_expr sub body;
      ctx.handler_stack <- saved;
      List.iter
        (fun c ->
          Option.iter (main_expr sub) c.c_guard;
          main_expr sub c.c_rhs)
        cases
    | Texp_match (scrut, cases, _) ->
      let caught =
        List.concat_map
          (fun c ->
            match Typedtree.split_pattern c.c_lhs with
            | _, Some exn_pat -> handler_names exn_pat
            | _, None -> [])
          cases
      in
      let saved = ctx.handler_stack in
      ctx.handler_stack <- caught @ saved;
      main_expr sub scrut;
      ctx.handler_stack <- saved;
      List.iter
        (fun c ->
          Option.iter (main_expr sub) c.c_guard;
          main_expr sub c.c_rhs)
        cases
    | Texp_apply (f, args) ->
      (match apply_head f with
      (* domain-escape: every function-typed argument of a Pool entry
         point is a closure that will run on worker domains *)
      | Some p when path_matches p pool_entry_points ->
        if not (path_has_suffix ctx.modname "Pool") then
          List.iter
            (fun (_, a) ->
              match a with
              | Some a when is_arrow a.exp_type ->
                walk_pool_closure ctx (Path.name p) a
              | _ -> ())
            args
      (* cache-purity: Cache.Key.v field lists *)
      | Some p when path_matches p [ "Cache.Key.v"; "Key.v" ] ->
        if not (path_has_suffix ctx.modname "Key") then
          List.iter (fun (_, a) -> Option.iter (walk_key_fields ctx) a) args
      (* cache-purity: nonlinearities built without a canonical identity *)
      | Some p
        when path_matches p [ "Nonlinearity.make" ]
             || (path_has_suffix ctx.modname "Nonlinearity"
                && (match p with
                   | Path.Pident id -> Ident.name id = "make"
                   | _ -> false)) ->
        (* at a total application the elaborator fills an omitted ?key
           with an explicit [None] construct; at a partial one the arg
           slot itself is [None] *)
        let key_omitted =
          List.exists
            (fun (l, a) ->
              match (l, a) with
              | Asttypes.Optional "key", None -> true
              | Asttypes.Optional "key", Some arg -> (
                match arg.Typedtree.exp_desc with
                | Typedtree.Texp_construct (_, cd, _) ->
                  cd.Types.cstr_name = "None"
                | _ -> false)
              | _ -> false)
            args
        in
        if key_omitted && not (is_arrow e.exp_type) then
          report ctx ~line:(line_of e) ~code:"cache-purity"
            "Nonlinearity.make without ~key builds an uncacheable \
             nonlinearity: every kernel keyed on it silently bypasses the \
             result cache; pass ~key (only if the string fully determines f \
             bit-for-bit) or waive"
      (* float-order: unordered iteration feeding float accumulation *)
      | Some p when path_matches p [ "Hashtbl.fold" ] ->
        if type_mentions_float e.exp_type then
          report ctx ~line:(line_of e) ~code:"float-order"
            "Hashtbl.fold accumulating a float: iteration order is \
             unspecified and float addition is not associative — collect, \
             sort by key, then fold"
      | Some p when path_matches p [ "Hashtbl.iter" ] ->
        let mutates_float =
          List.exists
            (fun (_, a) ->
              match a with
              | Some a when is_arrow a.exp_type ->
                let found = ref false in
                let it =
                  {
                    Tast_iterator.default_iterator with
                    expr =
                      (fun sub' e' ->
                        (match e'.exp_desc with
                        | Texp_setfield (_, _, _, v)
                          when type_mentions_float v.exp_type ->
                          found := true
                        | Texp_apply (g, gargs) -> (
                          match apply_head g with
                          | Some gp when path_matches gp [ ":=" ] ->
                            List.iter
                              (fun (_, ga) ->
                                match ga with
                                | Some ga
                                  when type_mentions_float ga.exp_type ->
                                  found := true
                                | _ -> ())
                              gargs
                          | _ -> ())
                        | _ -> ());
                        Tast_iterator.default_iterator.expr sub' e');
                  }
                in
                it.expr it a;
                !found
              | _ -> false)
            args
        in
        if mutates_float then
          report ctx ~line:(line_of e) ~code:"float-order"
            "Hashtbl.iter mutating float state: iteration order is \
             unspecified — iterate a sorted snapshot instead"
      | Some p when path_matches p [ "Seq.fold_left" ] ->
        let over_hashtbl =
          List.exists
            (fun (_, a) ->
              match a with
              | Some a -> (
                let found = ref false in
                let it =
                  {
                    Tast_iterator.default_iterator with
                    expr =
                      (fun sub' e' ->
                        (match apply_head e' with
                        | Some gp
                          when path_matches gp
                                 [
                                   "Hashtbl.to_seq";
                                   "Hashtbl.to_seq_keys";
                                   "Hashtbl.to_seq_values";
                                 ] ->
                          found := true
                        | _ -> ());
                        Tast_iterator.default_iterator.expr sub' e');
                  }
                in
                it.expr it a;
                !found)
              | None -> false)
            args
        in
        if over_hashtbl && type_mentions_float e.exp_type then
          report ctx ~line:(line_of e) ~code:"float-order"
            "Seq.fold_left over Hashtbl.to_seq accumulating a float: \
             iteration order is unspecified — sort before folding"
      (* raise-escape *)
      | Some p when path_matches p [ "Stdlib.raise"; "Stdlib.raise_notrace" ]
        -> (
        match args with
        | (_, Some arg) :: _ -> (
          match arg.exp_desc with
          | Texp_construct (_, cd, _) -> (
            match exn_path_of_construct cd with
            | Some exn_path -> raise_escape e exn_path
            | None -> ())
          | _ -> () (* re-raise of a caught value: fine *))
        | _ -> ())
      | Some p when path_matches p [ "Stdlib.invalid_arg" ] ->
        raise_escape e (predef "Invalid_argument")
      | Some p when path_matches p [ "Stdlib.failwith" ] ->
        raise_escape e (predef "Failure")
      | _ -> ());
      Tast_iterator.default_iterator.expr sub e
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let it = { Tast_iterator.default_iterator with expr = main_expr } in
  it.structure it str;
  List.rev ctx.out

(* ------------------------------------------------------------------ *)
(* Artifact discovery, source resolution, waiver filtering *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let resolve_source ?src_root rel =
  let candidates =
    (match src_root with Some r -> [ Filename.concat r rel ] | None -> [])
    @ [ rel; Filename.concat (Filename.concat "_build" "default") rel ]
  in
  List.find_opt Sys.file_exists candidates

let analyze_file ?src_root cmt_path =
  let diag severity ~code ~line ~file msg =
    D.make severity ~code ~loc:(Printf.sprintf "%s:%d" file line) msg
  in
  match Cmt_format.read_cmt cmt_path with
  | exception _ ->
    [
      D.warning ~code:"cmt-read" ~loc:cmt_path
        "unreadable .cmt artifact (compiler version mismatch?)";
    ]
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some src
      when not (Filename.check_suffix src ".ml-gen") ->
      let mli_text =
        Option.map read_file (resolve_source ?src_root (src ^ "i"))
      in
      let findings =
        analyze_structure ~modname:cmt.Cmt_format.cmt_modname ~mli_text str
      in
      let waivers =
        match resolve_source ?src_root src with
        | Some path -> Waiver.scan (read_file path)
        | None -> []
      in
      let kept =
        List.filter
          (fun f ->
            match
              List.find_opt
                (fun w -> Waiver.covers w ~code:f.code ~line:f.line)
                waivers
            with
            | Some w ->
              w.Waiver.used <- true;
              false
            | None -> true)
          findings
      in
      let unjustified =
        List.filter_map
          (fun (w : Waiver.t) ->
            if w.justified then None
            else
              Some
                (diag D.Warning ~code:"bad-waiver" ~line:w.line ~file:src
                   (Printf.sprintf
                      "waiver for %s has no justification — write (* dsa: \
                       allow %s — why *); the finding is not suppressed"
                      w.code w.code)))
          waivers
      in
      let unused =
        List.filter_map
          (fun (w : Waiver.t) ->
            if w.justified && not w.used then
              Some
                (diag D.Warning ~code:"unused-waiver" ~line:w.line ~file:src
                   (Printf.sprintf "waiver for %s matches no finding" w.code))
            else None)
          waivers
      in
      List.map
        (fun f -> diag D.Error ~code:f.code ~line:f.line ~file:src f.msg)
        kept
      @ unjustified @ unused
    | _ -> [])

(* waived count needs the pre-filter view; recompute cheaply *)
let waived_count ?src_root cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception _ -> 0
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some src
      when not (Filename.check_suffix src ".ml-gen") ->
      let mli_text =
        Option.map read_file (resolve_source ?src_root (src ^ "i"))
      in
      let findings =
        analyze_structure ~modname:cmt.Cmt_format.cmt_modname ~mli_text str
      in
      let waivers =
        match resolve_source ?src_root src with
        | Some path -> Waiver.scan (read_file path)
        | None -> []
      in
      List.length
        (List.filter
           (fun f ->
             List.exists
               (fun w -> Waiver.covers w ~code:f.code ~line:f.line)
               waivers)
           findings)
    | _ -> 0)

type report = {
  diags : (string * D.t list) list;
  modules : int;
  waived : int;
}

let rec walk_dir dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk_dir path acc
        else if Filename.check_suffix path ".cmt" then path :: acc
        else acc)
      acc entries

let collect_cmts root =
  if Sys.file_exists root && not (Sys.is_directory root) then [ root ]
  else if Sys.file_exists root then walk_dir root []
  else []

let run ?src_root roots =
  let cmts, src_root =
    let direct = List.concat_map collect_cmts roots in
    if direct <> [] then (direct, src_root)
    else
      (* source-checkout convenience: retry under the build context *)
      let prefixed =
        List.concat_map
          (fun r -> collect_cmts (Filename.concat "_build/default" r))
          roots
      in
      ( prefixed,
        match src_root with Some _ -> src_root | None -> Some "_build/default"
      )
  in
  let cmts = List.sort_uniq String.compare cmts in
  let modules = ref 0 in
  let waived = ref 0 in
  let by_file = Hashtbl.create 64 in
  List.iter
    (fun cmt ->
      let ds = analyze_file ?src_root cmt in
      incr modules;
      waived := !waived + waived_count ?src_root cmt;
      List.iter
        (fun (d : D.t) ->
          let file =
            match String.index_opt d.D.loc ':' with
            | Some i -> String.sub d.D.loc 0 i
            | None -> d.D.loc
          in
          let cur = Option.value ~default:[] (Hashtbl.find_opt by_file file) in
          Hashtbl.replace by_file file (d :: cur))
        ds)
    cmts;
  let line_no (d : D.t) =
    match String.index_opt d.D.loc ':' with
    | Some i -> (
      match
        int_of_string_opt
          (String.sub d.D.loc (i + 1) (String.length d.D.loc - i - 1))
      with
      | Some l -> l
      | None -> 0)
    | None -> 0
  in
  let diags =
    Hashtbl.fold (fun file ds acc -> (file, ds) :: acc) by_file []
    |> List.map (fun (file, ds) ->
           ( file,
             List.sort
               (fun a b ->
                 match Int.compare (line_no a) (line_no b) with
                 | 0 -> String.compare a.D.code b.D.code
                 | c -> c)
               ds ))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { diags; modules = !modules; waived = !waived }
