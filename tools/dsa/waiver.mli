(** Waiver comments for the [dsa] analyzer.

    A finding is waived by a comment on the same line or the line above:

    {v (* dsa: allow CODE — justification *) v}

    unlike [mlint], the justification is {e required}: a waiver without
    one does not suppress anything and is itself reported (code
    [bad-waiver]), so every intentional exception to a determinism
    contract leaves a written trace next to the code it excuses. *)

type t = {
  line : int;  (** line the [dsa: allow] token appears on *)
  code : string;  (** rule code being waived *)
  justified : bool;  (** a non-empty justification follows the code *)
  mutable used : bool;  (** set when the waiver suppresses a finding *)
}

val scan : string -> t list
(** [scan source] extracts every waiver from the comments of an OCaml
    source text, in file order. Comments are parsed with nesting;
    string literals are not entered (a ["dsa: allow"] inside a string
    is ignored). *)

val covers : t -> code:string -> line:int -> bool
(** Same-line-or-line-above rule, code must match, justification
    required. *)
