(* dsa — typed-AST domain-safety & determinism analyzer.

   Usage: dsa [--json] [--strict] [--src-root DIR] ROOT...

   Each ROOT is a directory walked for .cmt artifacts (or a literal
   .cmt path). Output mirrors `oshil lint`: human per-file sections or
   a single-line JSON array with --json; exit 1 on errors, or on
   warnings too under --strict. *)

module Analyze = Dsa_core.Analyze
module D = Check.Diagnostic

let usage = "usage: dsa [--json] [--strict] [--src-root DIR] ROOT..."

let () =
  let json = ref false in
  let strict = ref false in
  let src_root = ref None in
  let roots = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse rest
    | "--strict" :: rest ->
      strict := true;
      parse rest
    | "--src-root" :: dir :: rest ->
      src_root := Some dir;
      parse rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      prerr_endline ("dsa: unknown option " ^ arg);
      prerr_endline usage;
      exit 2
    | root :: rest ->
      roots := root :: !roots;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let report = Analyze.run ?src_root:!src_root roots in
  if report.Analyze.modules = 0 then begin
    prerr_endline
      "dsa: no .cmt artifacts found (build the tree first: dune build)";
    exit 2
  end;
  if !json then begin
    let entry (f, ds) =
      Printf.sprintf
        {|{"file":"%s","errors":%d,"warnings":%d,"diagnostics":%s}|}
        (D.json_escape f)
        (D.count_severity D.Error ds)
        (D.count_severity D.Warning ds)
        (D.list_to_json ds)
    in
    print_endline
      (Printf.sprintf "[%s]"
         (String.concat "," (List.map entry report.Analyze.diags)))
  end
  else begin
    List.iter
      (fun (f, ds) ->
        Format.printf "%s:@." f;
        List.iter (fun d -> Format.printf "  %a@." D.pp d) ds;
        Format.printf "%s: %d error(s), %d warning(s), %d note(s)@." f
          (D.count_severity D.Error ds)
          (D.count_severity D.Warning ds)
          (D.count_severity D.Info ds))
      report.Analyze.diags;
    Format.printf "dsa: %d module(s) analyzed, %d file(s) with findings, %d \
                   waived@."
      report.Analyze.modules
      (List.length report.Analyze.diags)
      report.Analyze.waived
  end;
  let all = List.concat_map snd report.Analyze.diags in
  if
    D.errors all <> []
    || (!strict && D.count_severity D.Warning all > 0)
  then exit 1
