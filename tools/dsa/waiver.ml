type t = { line : int; code : string; justified : bool; mutable used : bool }

let is_code_char = function
  | 'a' .. 'z' | '0' .. '9' | '-' -> true
  | _ -> false

(* A justification is whatever non-blank text follows the code inside
   the comment, optionally introduced by an ASCII or Unicode dash. A
   bare closing "*)" right after the code means no justification. *)
let parse_comment ~line body waivers =
  let prefix = "dsa: allow " in
  let plen = String.length prefix in
  let blen = String.length body in
  let line_at =
    (* line of offset [k] within the comment body *)
    fun k ->
      let l = ref line in
      for i = 0 to min k (blen - 1) - 1 do
        if body.[i] = '\n' then incr l
      done;
      !l
  in
  let rec find k =
    if k + plen > blen then ()
    else if String.sub body k plen = prefix then begin
      let j = ref (k + plen) in
      let b = Buffer.create 16 in
      while !j < blen && is_code_char body.[!j] do
        Buffer.add_char b body.[!j];
        incr j
      done;
      if Buffer.length b > 0 then begin
        (* skip blanks and dash introducers, then require any text *)
        let skip = function
          | ' ' | '\t' | '-' -> true
          | c -> Char.code c land 0x80 <> 0 (* UTF-8 dash bytes *)
        in
        let p = ref !j in
        while !p < blen && skip body.[!p] do
          incr p
        done;
        let justified = ref false in
        let q = ref !p in
        while (not !justified) && !q < blen do
          (match body.[!q] with
          | ' ' | '\t' | '\n' | '\r' -> ()
          | _ -> justified := true);
          incr q
        done;
        waivers :=
          {
            line = line_at k;
            code = Buffer.contents b;
            justified = !justified;
            used = false;
          }
          :: !waivers
      end;
      find !j
    end
    else find (k + 1)
  in
  find 0

let scan src =
  let n = String.length src in
  let waivers = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let start_line = !line in
      let start = !i + 2 in
      let depth = ref 1 in
      i := !i + 2;
      while !depth > 0 && !i < n do
        if src.[!i] = '\n' then incr line
        else if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          incr i
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          incr i;
          if !depth = 0 then
            parse_comment ~line:start_line
              (String.sub src start (!i - 1 - start))
              waivers
        end;
        incr i
      done
    end
    else if c = '"' then begin
      (* ordinary string: skip so a quoted "dsa: allow" is inert *)
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (if src.[!i] = '\\' && !i + 1 < n then incr i
         else if src.[!i] = '"' then fin := true
         else if src.[!i] = '\n' then incr line);
        incr i
      done
    end
    else if
      c = '{' && !i + 1 < n
      && (src.[!i + 1] = '|'
         || src.[!i + 1] = '_'
         || (src.[!i + 1] >= 'a' && src.[!i + 1] <= 'z'))
    then begin
      (* quoted string {id|...|id}: skip verbatim *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z'))
      do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let clen = String.length close in
        let k = ref (!j + 1) in
        let fin = ref false in
        while (not !fin) && !k + clen <= n do
          if String.sub src !k clen = close then fin := true
          else begin
            if src.[!k] = '\n' then incr line;
            incr k
          end
        done;
        i := (if !fin then !k + clen else n)
      end
      else incr i
    end
    else incr i
  done;
  List.rev !waivers

let covers w ~code ~line =
  w.justified && w.code = code && (w.line = line || w.line = line - 1)
