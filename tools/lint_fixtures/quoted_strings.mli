(* Interface for the stripper regression fixture (mlint's missing-mli
   rule applies to every directory it is pointed at). *)

val plain : string
val underscored_id : string
val multi_line : string
val nested_after : string
val tricky : string
val used_so_unused_var_warnings_stay_off : int
