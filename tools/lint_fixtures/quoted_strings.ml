(* Regression fixture for mlint's comment/string stripper: every rule
   trigger below sits inside a quoted-string literal and must NOT be
   reported. The [{id_with_underscore|...|id_with_underscore}] form is
   the historical bug — the delimiter-id scanner dropped '_' and leaked
   the body into the lexical rules. Not compiled; linted by the rule in
   ../dune. *)

let plain = {|p == q && compare a b != 0|}

let underscored_id =
  {assert_msg|failwith "x == y"; Obj.magic; Printf.printf|assert_msg}

let multi_line =
  {sql_query|
    SELECT * FROM runs WHERE a == b
      AND status != 'failed'  -- compare, failwith, exit
  |sql_query}

let nested_after = "ordinary == string"

(* a quoted string whose body contains a fake closing delimiter for a
   different id: the scanner must keep skipping to the real one *)
let tricky = {outer_id|body with |inner| and |outer} then really |outer_id}

let used_so_unused_var_warnings_stay_off =
  String.length plain
  + String.length underscored_id
  + String.length multi_line
  + String.length nested_after
  + String.length tricky
