(* Repo-local style linter for the OCaml sources under lib/.

   Rules (each has a stable code, shown in the report):

     missing-mli   every lib/ module must have an interface file
     poly-compare  no bare polymorphic [compare] — use Float.compare etc.
     phys-eq       no [==] / [!=] physical equality
     obj-magic     no [Obj.magic]
     printf        no [Printf.printf] in library code (Printf.sprintf is fine)
     exit          no [exit] outside bin/ and bench/
     failwith      no [failwith] in library code — raise a typed
                   [Resilience.Oshil_error] (or a documented module
                   exception) so callers can match on structure
     direct-clock  no [Unix.gettimeofday] / [Sys.time] in library code
                   outside lib/obs — use [Obs.Clock] so telemetry and
                   benches share one monotonic clock
     direct-gc     no [Gc.stat] / [Gc.quick_stat] / [Gc.counters] in
                   library code outside lib/obs — use
                   [Obs.Event.gc_sample] so allocation telemetry flows
                   through the one gated, off-by-default stream
     local-linspace no local [let linspace] definitions — the canonical
                   one lives in [Numerics.Kernel] (bit-identical uniform
                   sampling everywhere, one expression to audit)

   A line can waive a rule with the comment [(* mlint: allow CODE *)]
   placed on the same line (or the line above) as the offending token.

   The checks are lexical: comments and string/char literals are
   stripped before token matching, so ["=="] inside a docstring does not
   trip [phys-eq]. This keeps the tool dependency-free — it runs with
   nothing beyond the stdlib, which is what lets it sit inside
   [dune runtest] on a bare switch. *)

let exit_allowed_dirs = [ "bin"; "bench"; "tools" ]

(* no allowlist inside lib/: every failure a library can raise must be
   typed (Resilience.Oshil_error) or a documented module exception *)
let failwith_allowed_dirs = [ "bin"; "bench"; "tools"; "test" ]

(* lib/obs wraps the clock; everything outside lib/ keeps its freedom *)
let clock_allowed_dirs = [ "obs"; "bin"; "bench"; "tools"; "test" ]

(* lib/obs samples the GC (Obs.Event.gc_sample); a direct probe
   elsewhere in lib/ would bypass the event gate and its bit-identity
   contract. bench/ reads Gc.quick_stat on purpose (alloc fields). *)
let gc_allowed_dirs = [ "obs"; "bin"; "bench"; "tools"; "test" ]

type finding = { file : string; line : int; code : string; msg : string }

let findings : finding list ref = ref []

let report ~file ~line ~code msg = findings := { file; line; code; msg } :: !findings

(* ------------------------------------------------------------------ *)
(* Source model: per-line token streams with comments/strings removed. *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type waiver = { w_line : int; w_code : string }

(* Strip comments and literals, recording [mlint: allow CODE] waivers.
   Returns the blanked text (same length/line structure as the input)
   and the waiver list. *)
let strip src =
  let n = String.length src in
  let buf = Bytes.of_string src in
  let waivers = ref [] in
  let line = ref 1 in
  let blank i = if Bytes.get buf i <> '\n' then Bytes.set buf i ' ' in
  let i = ref 0 in
  let in_comment_scan start stop =
    (* look for "mlint: allow <code>" inside the comment body *)
    let body = String.sub src start (stop - start) in
    let re_prefix = "mlint: allow " in
    match String.index_opt body 'm' with
    | None -> ()
    | Some _ ->
      let plen = String.length re_prefix in
      let rec find k =
        if k + plen > String.length body then ()
        else if String.sub body k plen = re_prefix then begin
          let j = ref (k + plen) in
          let b = Buffer.create 16 in
          while
            !j < String.length body
            && (match body.[!j] with
               | 'a' .. 'z' | '0' .. '9' | '-' -> true
               | _ -> false)
          do
            Buffer.add_char b body.[!j];
            incr j
          done;
          if Buffer.length b > 0 then
            waivers := { w_line = !line; w_code = Buffer.contents b } :: !waivers
        end
        else find (k + 1)
      in
      find 0
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment, possibly nested *)
      let start = !i + 2 in
      let depth = ref 1 in
      blank !i;
      blank (!i + 1);
      i := !i + 2;
      while !depth > 0 && !i < n do
        if src.[!i] = '\n' then incr line
        else if src.[!i] = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          blank !i;
          blank (!i + 1);
          incr i
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          blank !i;
          blank (!i + 1);
          incr i;
          if !depth = 0 then in_comment_scan start (!i - 1)
        end
        else blank !i;
        incr i
      done
    end
    else if c = '"' then begin
      (* string literal *)
      blank !i;
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        (if src.[!i] = '\\' && !i + 1 < n then begin
           blank !i;
           blank (!i + 1);
           incr i
         end
         else if src.[!i] = '"' then fin := true
         else begin
           if src.[!i] = '\n' then incr line;
           blank !i
         end);
        incr i
      done
    end
    else if c = '{' && !i + 1 < n
            && (src.[!i + 1] = '|'
               || src.[!i + 1] = '_'
               || (src.[!i + 1] >= 'a' && src.[!i + 1] <= 'z')) then begin
      (* possible quoted string {id|...|id}; the delimiter id is lowercase
         letters and underscores *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z'))
      do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let id = String.sub src (!i + 1) (!j - !i - 1) in
        let close = "|" ^ id ^ "}" in
        let clen = String.length close in
        let k = ref (!j + 1) in
        let fin = ref false in
        while (not !fin) && !k + clen <= n do
          if String.sub src !k clen = close then fin := true else incr k
        done;
        let stop = if !fin then !k + clen else n in
        for p = !i to stop - 1 do
          if src.[p] = '\n' then incr line;
          blank p
        done;
        i := stop
      end
      else incr i
    end
    else if c = '\'' && !i + 2 < n
            && (src.[!i + 1] = '\\' || src.[!i + 2] = '\'') then begin
      (* char literal: '\x..' or 'c' — a lone quote (type variable) passes *)
      blank !i;
      incr i;
      if src.[!i] = '\\' then begin
        blank !i;
        incr i;
        while !i < n && src.[!i] <> '\'' do
          blank !i;
          incr i
        done
      end
      else blank !i;
      if !i < n && src.[!i] = '\'' then begin
        blank !i;
        incr i
      end
      else incr i
    end
    else incr i
  done;
  (Bytes.to_string buf, !waivers)

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* All positions where [word] occurs as a standalone identifier, i.e.
   not embedded in a longer identifier and not a record/module access
   ([x.compare] or [Float.compare] must not match bare [compare]). *)
let ident_occurrences text word =
  let wl = String.length word in
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i + wl <= n do
    if String.sub text !i wl = word then begin
      let before_ok =
        !i = 0
        || (not (is_ident_char text.[!i - 1]))
           && text.[!i - 1] <> '.'
      in
      let after_ok = !i + wl >= n || not (is_ident_char text.[!i + wl]) in
      if before_ok && after_ok then out := !i :: !out;
      i := !i + wl
    end
    else incr i
  done;
  List.rev !out

let op_occurrences text op =
  (* operator tokens [==] / [!=]: must not be part of a longer operator
     run like [===] or [!==], and [==] must not be the tail of a longer
     symbolic operator *)
  let is_op_char = function
    | '=' | '<' | '>' | '!' | '&' | '|' | '+' | '-' | '*' | '/' | '$' | '%'
    | '@' | '^' | '?' | '~' | '.' | ':' ->
      true
    | _ -> false
  in
  let ol = String.length op in
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i + ol <= n do
    if String.sub text !i ol = op then begin
      let before_ok = !i = 0 || not (is_op_char text.[!i - 1]) in
      let after_ok = !i + ol >= n || not (is_op_char text.[!i + ol]) in
      if before_ok && after_ok then out := !i :: !out;
      i := !i + ol
    end
    else incr i
  done;
  List.rev !out

let line_of text pos =
  let line = ref 1 in
  for i = 0 to pos - 1 do
    if text.[i] = '\n' then incr line
  done;
  !line

(* ------------------------------------------------------------------ *)
(* Rules *)

let waived waivers code line =
  List.exists
    (fun w -> w.w_code = code && (w.w_line = line || w.w_line = line - 1))
    waivers

let check_tokens ~file ~dir text waivers =
  let rule code occs msg =
    List.iter
      (fun pos ->
        let line = line_of text pos in
        if not (waived waivers code line) then report ~file ~line ~code msg)
      occs
  in
  rule "poly-compare"
    (ident_occurrences text "compare")
    "bare polymorphic compare; use Float.compare / String.compare / \
     Int.compare or a record-field comparator";
  rule "phys-eq"
    (op_occurrences text "==" @ op_occurrences text "!=")
    "physical equality on values; use = / <> (or waive with (* mlint: \
     allow phys-eq *) when identity is intended)";
  (* Qualified names: ident_occurrences rejects dotted access by design,
     so match the full path as one token. *)
  let qualified path =
    let pl = String.length path in
    let n = String.length text in
    let out = ref [] in
    let i = ref 0 in
    while !i + pl <= n do
      if String.sub text !i pl = path then begin
        let before_ok =
          !i = 0 || ((not (is_ident_char text.[!i - 1])) && text.[!i - 1] <> '.')
        in
        let after_ok = !i + pl >= n || not (is_ident_char text.[!i + pl]) in
        if before_ok && after_ok then out := !i :: !out;
        i := !i + pl
      end
      else incr i
    done;
    List.rev !out
  in
  rule "obj-magic" (qualified "Obj.magic") "Obj.magic defeats the type system";
  (* a [linspace] binding is a reimplementation (or shadowing) of the
     canonical Numerics.Kernel.linspace: one uniform-sampling expression
     keeps grids bit-identical across the code base *)
  rule "local-linspace"
    (ident_occurrences text "linspace"
    |> List.filter (fun pos ->
           (* only definitions: the identifier right before must be [let]
              (fun-arg shadowing is too rare to chase lexically) *)
           let rec skip_ws i =
             if i >= 0 && (text.[i] = ' ' || text.[i] = '\t') then
               skip_ws (i - 1)
             else i
           in
           let j = skip_ws (pos - 1) in
           j >= 2 && String.sub text (j - 2) 3 = "let"
           && (j = 2 || not (is_ident_char text.[j - 3]))))
    "local linspace definition; use Numerics.Kernel.linspace (waive with \
     (* mlint: allow local-linspace *) only for the canonical definition)";
  rule "printf"
    (qualified "Printf.printf" @ qualified "print_endline"
    @ qualified "print_string")
    "stdout printing in library code; return strings or take a formatter";
  if not (List.mem dir clock_allowed_dirs) then
    rule "direct-clock"
      (qualified "Unix.gettimeofday" @ qualified "Sys.time")
      "direct timing call in library code; use Obs.Clock (monotonic) so \
       telemetry and benches share one clock";
  if not (List.mem dir gc_allowed_dirs) then
    rule "direct-gc"
      (qualified "Gc.stat" @ qualified "Gc.quick_stat"
      @ qualified "Gc.counters" @ qualified "Gc.allocated_bytes")
      "direct GC statistics in library code; emit Obs.Event.gc_sample \
       (gated, off by default) so allocation telemetry stays in one \
       stream";
  if not (List.mem dir failwith_allowed_dirs) then
    rule "failwith"
      (ident_occurrences text "failwith")
      "failwith in library code; raise a typed Resilience.Oshil_error \
       (or a documented module exception) so callers can match on it";
  if not (List.mem dir exit_allowed_dirs) then
    rule "exit"
      (ident_occurrences text "exit"
      |> List.filter (fun pos ->
             (* [at_exit] is fine and already excluded by the ident rule;
                [Stdlib.exit]/[exit] both count *)
             pos < 5 || String.sub text (pos - 5) 5 <> "Unix."))
      "exit in library code; raise instead and let bin/ decide"

let check_file ~dir file =
  let src = read_file file in
  let text, waivers = strip src in
  check_tokens ~file ~dir text waivers;
  if Filename.check_suffix file ".ml" && dir <> "bin" && dir <> "bench"
     && dir <> "tools" && dir <> "test" then begin
    let mli = file ^ "i" in
    if not (Sys.file_exists mli) then
      report ~file ~line:1 ~code:"missing-mli"
        "library module has no interface file"
  end

(* ------------------------------------------------------------------ *)

let rec walk dir f =
  Array.iter
    (fun entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then
        (if entry <> "_build" && entry.[0] <> '.' then walk path f)
      else f path)
    (Sys.readdir dir)

let () =
  let roots = if Array.length Sys.argv > 1 then List.tl (Array.to_list Sys.argv) else [ "lib" ] in
  List.iter
    (fun root ->
      if Sys.is_directory root then
        walk root (fun path ->
            if Filename.check_suffix path ".ml" then begin
              (* [dir] is the top-level component under the root, used
                 for the per-directory exit/printf policy *)
              let rel = path in
              let dir =
                match String.split_on_char '/' rel with
                | _root :: sub :: _ :: _ -> sub
                | _ -> Filename.basename (Filename.dirname rel)
              in
              let dir = if dir = "lib" then Filename.basename (Filename.dirname rel) else dir in
              check_file ~dir path
            end)
      else if Filename.check_suffix root ".ml" then
        check_file ~dir:(Filename.basename (Filename.dirname root)) root)
    roots;
  let fs =
    List.sort
      (fun a b ->
        match String.compare a.file b.file with
        | 0 -> Int.compare a.line b.line
        | c -> c)
      !findings
  in
  List.iter
    (fun f ->
      Printf.eprintf "%s:%d: [%s] %s\n" f.file f.line f.code f.msg)
    fs;
  match fs with
  | [] -> print_endline "mlint: clean"
  | _ :: _ ->
    Printf.eprintf "mlint: %d finding(s)\n" (List.length fs);
    exit 1
