# Convenience targets; everything here is a thin wrapper over dune.

.PHONY: all test lint analyze bench-smoke bench bench-compare report \
        batch cache-smoke kernel-smoke serve serve-smoke hb-smoke \
        coverage clean

all:
	dune build

test:
	dune runtest

# Static checks: the repo source linter (tools/mlint.ml) plus `oshil
# lint` over the shipped netlists and scenarios.
lint:
	dune build @lint
	dune exec bin/oshil.exe -- lint examples/netlists/*.cir examples/scenarios/*.scn

# Typed-AST static analysis (tools/dsa): walks the .cmt artifacts of
# every lib/ module and enforces the domain-safety / cache-purity /
# float-order / raise-escape contracts. --strict also fails on
# warnings (bad or unused waivers).
analyze:
	dune build @analyze

# CI smoke: build, run the tier-1 tests, then run the bench harness in
# its fast configuration (--only-bench --skip-slow) and verify that the
# emitted BENCH_*.json records parse.
bench-smoke:
	dune build
	dune runtest
	dune build @bench-smoke

# Full tracked benchmarks: emits BENCH_grid.json / BENCH_lockrange.json
# in the repository root and validates them. Set OSHIL_JOBS (or pass
# JOBS=N) to control the pool size of the parallel kernels.
JOBS ?=
bench:
	dune build bench/main.exe @analyze
	OSHIL_DSA_FINDINGS=0 ./_build/default/bench/main.exe --only-bench $(if $(JOBS),--jobs $(JOBS),)
	./_build/default/bench/main.exe --check-json BENCH_grid.json BENCH_lockrange.json BENCH_cache.json

# Regression sentinel: record fresh bench results into FRESH_DIR and
# re-judge them against the committed BENCH_*.json baselines with
# per-metric directions and tolerances (see lib/experiments/
# bench_compare.mli for the policy). Exits nonzero on any regression.
FRESH_DIR ?= _bench_fresh
bench-compare:
	dune build bench/main.exe
	mkdir -p $(FRESH_DIR)
	cd $(FRESH_DIR) && ../_build/default/bench/main.exe --only-bench $(if $(JOBS),--jobs $(JOBS),)
	./_build/default/bench/main.exe --fresh-dir $(FRESH_DIR) \
	  --compare BENCH_grid.json BENCH_lockrange.json BENCH_transient.json \
	  BENCH_cache.json BENCH_hb.json

# Run-health report from a solver trace recorded with
# `oshil ... --trace TRACE --events`.  Usage: make report TRACE=out/health.jsonl
TRACE ?= out/health.jsonl
report:
	dune build bin/oshil.exe
	./_build/default/bin/oshil.exe stats report $(TRACE)

# Batch-run the shipped scenarios with the content-addressed cache on;
# run it twice to see the warm-cache speedup (`oshil stats` on the
# trace shows the cache.* counters).
batch:
	dune build bin/oshil.exe
	./_build/default/bin/oshil.exe batch examples/scenarios --cache

# Cache correctness: cold, warm and cache-disabled runs must produce
# byte-identical batch reports, and the warm run must actually hit.
cache-smoke:
	dune build @cache-smoke

# Batch-kernel correctness: `oshil shil` must be byte-identical with
# the batch kernels disabled (OSHIL_NO_BATCH=1), and the harmonic
# counters must appear in the telemetry replay.
kernel-smoke:
	dune build @kernel-smoke

# Resident analysis daemon on a local Unix socket. Talk to it with
# `oshil call -c oshil.sock <op>`; SIGTERM/SIGINT drain gracefully
# (finish in-flight work, flush telemetry, exit 0). Override the
# address with ADDR=tcp:HOST:PORT or ADDR=unix:PATH.
ADDR ?= oshil.sock
serve:
	dune build bin/oshil.exe
	./_build/default/bin/oshil.exe serve -l $(ADDR)

# Daemon end-to-end smoke: lifecycle, typed protocol errors, CLI/daemon
# byte-identity, serve-request fault injection, graceful drain.
serve-smoke:
	dune build @serve-smoke

# Harmonic-balance end-to-end smoke: CLI/daemon byte-identity on the hb
# op, solver counters on the trace, hb-newton fault ladder.
hb-smoke:
	dune build @hb-smoke

# Coverage (requires bisect_ppx, not part of the default environment):
#   opam install bisect_ppx
coverage:
	find . -name '*.coverage' -delete
	dune runtest --instrument-with bisect_ppx --force
	bisect-ppx-report summary --per-file

clean:
	dune clean
